package rank

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// keyStage is a test stage with a configurable cache key and an identity
// Apply — for fingerprint tests that need exact control over key bytes.
type keyStage struct{ key string }

func (s keyStage) CacheKey() string    { return s.key }
func (s keyStage) OverFetch(m int) int { return m }
func (s keyStage) Apply(m int, items []int, scores []float64) ([]int, []float64) {
	return items, scores
}

// keyedFilter is an excludes-nothing filter with a configurable cache
// key, for aliasing tests across the filter/stage fingerprint boundary.
type keyedFilter struct{ key string }

func (f keyedFilter) Excluded(int) bool { return false }
func (f keyedFilter) CacheKey() string  { return f.key }

// TestTopMStagedZeroStageEquivalence is the zero-stage property test:
// across random catalogues, m values and filter combinations, TopMStaged
// with an empty (or all-nil) stage list must return bit-identical items
// AND scores to TopM — and share its cache entries, because the
// fingerprints are identical too.
func TestTopMStagedZeroStageEquivalence(t *testing.T) {
	f := func(seed uint16, mRaw uint8, combo uint8) bool {
		r := rng.New(uint64(seed)*11 + 3)
		ni := 5 + r.Intn(150)
		scores := make([]float64, ni)
		for i := range scores {
			scores[i] = float64(r.Intn(6)) // coarse: force ties
		}
		m := 1 + int(mRaw)%ni

		var filters []Filter
		if combo&1 != 0 {
			var list []int
			for n := 0; n < r.Intn(20); n++ {
				list = append(list, r.Intn(ni))
			}
			filters = append(filters, ExcludeItems(list))
		}
		if combo&2 != 0 {
			tab := testTagTable(t, ni)
			df, err := tab.Deny("third")
			if err != nil {
				t.Fatal(err)
			}
			filters = append(filters, df)
		}

		var stages []Stage
		if combo&4 != 0 {
			stages = []Stage{nil, nil} // compacts to the zero-stage path
		}

		e := NewEngine(&fixedScorer{scores: [][]float64{scores}}, Config{CacheSize: 16})
		wantItems, wantScores, cached := e.TopM(0, m, filters...)
		if cached {
			return false
		}
		gotItems, gotScores, cached := e.TopMStaged(0, m, stages, filters...)
		// Identical fingerprint ⇒ the staged call must hit the entry the
		// unstaged one just filled (the engine cache is enabled and the
		// filter set is keyed).
		if !cached {
			return false
		}
		if len(gotItems) != len(wantItems) || len(gotScores) != len(wantScores) {
			return false
		}
		for i := range wantItems {
			if gotItems[i] != wantItems[i] || gotScores[i] != wantScores[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreFloorStage(t *testing.T) {
	st := ScoreFloor(2.5)
	items, scores := st.Apply(3, []int{7, 3, 9, 1}, []float64{5, 2.5, 2, 1})
	if fmt.Sprint(items) != "[7 3]" || fmt.Sprint(scores) != "[5 2.5]" {
		t.Errorf("floor kept %v %v, want [7 3] [5 2.5] (>= is inclusive)", items, scores)
	}
	if st.OverFetch(10) != 10 {
		t.Errorf("floor over-fetches: %d", st.OverFetch(10))
	}
	if ScoreFloor(2.5).CacheKey() != st.CacheKey() {
		t.Error("equal floors key apart")
	}
	if ScoreFloor(2.5000001).CacheKey() == st.CacheKey() {
		t.Error("different floors share a key")
	}
}

func TestBoostStage(t *testing.T) {
	tab := testTagTable(t, 10) // "rare" = items 1 and 9
	st, err := tab.Boost(10, 2, "rare")
	if err != nil {
		t.Fatal(err)
	}
	if st.OverFetch(3) != 6 {
		t.Errorf("boost OverFetch(3) = %d, want 6", st.OverFetch(3))
	}
	// Item 9 sits below the would-be cut; the boost lifts it to the top.
	items, scores := st.Apply(2, []int{4, 2, 6, 9}, []float64{8, 7, 6, 5})
	if items[0] != 9 || scores[0] != 15 {
		t.Errorf("boosted head %v %v, want item 9 at 15 first", items, scores)
	}
	// Untagged heads pass through untouched (no re-sort).
	items, _ = st.Apply(2, []int{4, 2}, []float64{8, 7})
	if items[0] != 4 || items[1] != 2 {
		t.Errorf("untouched head reordered: %v", items)
	}
	if _, err := tab.Boost(1, 2, "no-such-tag"); err == nil {
		t.Error("unknown tag accepted")
	}
	// overFetch <= 1 clamps to reorder-only.
	st1, err := tab.Boost(1, 0, "rare")
	if err != nil {
		t.Fatal(err)
	}
	if st1.OverFetch(5) != 5 {
		t.Errorf("clamped boost OverFetch(5) = %d, want 5", st1.OverFetch(5))
	}
	if st1.CacheKey() == st.CacheKey() {
		t.Error("different boost configs share a key")
	}
}

// gridVectors gives each item a one-hot vector by item%dims — items
// congruent mod dims are maximally similar, others orthogonal.
type gridVectors struct{ dims int }

func (g gridVectors) ItemVector(i int) []float64 {
	v := make([]float64, g.dims)
	v[i%g.dims] = 1
	return v
}

func TestDiversifyStage(t *testing.T) {
	if _, err := Diversify(-0.1, 2, gridVectors{2}); err == nil {
		t.Error("lambda < 0 accepted")
	}
	if _, err := Diversify(0.5, 0, gridVectors{2}); err == nil {
		t.Error("factor < 1 accepted")
	}
	if _, err := Diversify(0.5, 2, nil); err == nil {
		t.Error("nil vectors accepted")
	}

	// lambda=1 is pure relevance: identity on a strictly ordered head.
	ident, err := Diversify(1, 2, gridVectors{2})
	if err != nil {
		t.Fatal(err)
	}
	items, scores := ident.Apply(3, []int{0, 2, 4, 1}, []float64{9, 8, 7, 6})
	if fmt.Sprint(items) != "[0 2 4]" || fmt.Sprint(scores) != "[9 8 7]" {
		t.Errorf("lambda=1 not the identity: %v %v", items, scores)
	}

	// Strong diversity: items 0,2,4 share a co-cluster, item 1 is the
	// orthogonal one. With lambda=0.3 the second pick must be item 1
	// despite its lower relevance.
	div, err := Diversify(0.3, 2, gridVectors{2})
	if err != nil {
		t.Fatal(err)
	}
	items, scores = div.Apply(2, []int{0, 2, 4, 1}, []float64{1, 0.9, 0.8, 0.5})
	if len(items) != 2 || items[0] != 0 || items[1] != 1 {
		t.Errorf("diversified head %v, want [0 1]", items)
	}
	// Output keeps the original relevance scores, not the MMR objective.
	if scores[1] != 0.5 {
		t.Errorf("diversified score %v, want the original 0.5", scores[1])
	}
	if div.OverFetch(5) != 10 {
		t.Errorf("OverFetch(5) = %d, want 10", div.OverFetch(5))
	}
	if div.CacheKey() == ident.CacheKey() {
		t.Error("different lambdas share a key")
	}
}

// TestFingerprintStagedAliasing pins the injectivity of the staged
// fingerprint: length-prefixed stage keys cannot alias across stage
// boundaries, and a filter key containing the "|s|" marker cannot alias
// a filters+stages combination.
func TestFingerprintStagedAliasing(t *testing.T) {
	fp := func(filters []Filter, stages []Stage) string {
		s, ok := fingerprintStaged(flatten(filters), stages)
		if !ok {
			t.Fatalf("fingerprintStaged(%v, %v) uncacheable", filters, stages)
		}
		return s
	}
	if fp(nil, []Stage{keyStage{"a"}, keyStage{"bc"}}) == fp(nil, []Stage{keyStage{"ab"}, keyStage{"c"}}) {
		t.Error(`stage keys ["a","bc"] and ["ab","c"] alias`)
	}
	if fp(nil, []Stage{keyStage{"a"}}) == fp(nil, []Stage{keyStage{"a"}, keyStage{"a"}}) {
		t.Error("stage list length not captured")
	}
	// A filter whose key embeds the stage marker and a valid-looking
	// length-prefixed token must not collide with the real thing.
	withMarker := []Filter{keyedFilter{"x|s|1:a"}}
	split := []Filter{keyedFilter{"x"}}
	if fp(withMarker, nil) == fp(split, []Stage{keyStage{"a"}}) {
		t.Error("filter key containing \"|s|\" aliases a filters+stages fingerprint")
	}
	// Same filters, staged vs unstaged, must differ; zero stages must not.
	if fp(split, []Stage{keyStage{"a"}}) == fp(split, nil) {
		t.Error("staged and unstaged requests share a fingerprint")
	}
	if fp(split, nil) != fp(split, []Stage{}) {
		t.Error("empty stage list changed the fingerprint")
	}
	// Uncacheable cases: empty stage key, oversized total.
	if _, ok := fingerprintStaged(nil, []Stage{keyStage{""}}); ok {
		t.Error("empty stage key reported cacheable")
	}
	huge := keyStage{key: string(make([]byte, maxFingerprintLen))}
	if _, ok := fingerprintStaged(nil, []Stage{huge}); ok {
		t.Error("oversized stage key reported cacheable")
	}
}

// TestMergeTopMStagedMatchesSingleProcess proves the router-side stage
// hook bit-identical to single-process staged serving: partials built by
// Select over disjoint partitions of one score vector, merged and staged
// by MergeTopMStaged, must equal Engine.TopMStaged over the full vector
// — same items, same float64 bits — across random splits and stage
// combinations.
func TestMergeTopMStagedMatchesSingleProcess(t *testing.T) {
	tab := testTagTable(t, 120)
	f := func(seed uint16, mRaw uint8, combo uint8) bool {
		r := rng.New(uint64(seed)*17 + 5)
		ni := 30 + r.Intn(90)
		scores := make([]float64, ni)
		for i := range scores {
			scores[i] = float64(r.Intn(7)) // ties stress the merge rule
		}
		m := 1 + int(mRaw)%20

		var stages []Stage
		if combo&1 != 0 {
			stages = append(stages, ScoreFloor(2))
		}
		if combo&2 != 0 {
			boost, err := tab.Boost(3, 2, "rare")
			if err != nil {
				t.Fatal(err)
			}
			stages = append(stages, boost)
		}
		if combo&4 != 0 {
			div, err := Diversify(0.6, 3, gridVectors{4})
			if err != nil {
				t.Fatal(err)
			}
			stages = append(stages, div)
		}

		// Single-process reference: an engine over the full vector.
		e := NewEngine(&fixedScorer{scores: [][]float64{scores}}, Config{CacheSize: -1})
		wantItems, wantScores, _ := e.TopMStaged(0, m, stages)

		// Router side: split into 1–4 disjoint partitions, Select each to
		// the over-fetched length, merge + stage.
		fetch := StagesOverFetch(m, stages)
		nParts := 1 + r.Intn(4)
		var parts []Partial
		at := 0
		for p := 0; p < nParts; p++ {
			hi := ni
			if p < nParts-1 {
				hi = at + r.Intn(ni-at+1)
			}
			sl := scores[at:hi]
			local := Select(sl, fetch)
			part := Partial{}
			for _, li := range local {
				part.Items = append(part.Items, li+at)
				part.Scores = append(part.Scores, sl[li])
			}
			parts = append(parts, part)
			at = hi
		}
		gotItems, gotScores := MergeTopMStaged(m, stages, parts...)

		if len(gotItems) != len(wantItems) {
			return false
		}
		for i := range wantItems {
			if gotItems[i] != wantItems[i] || gotScores[i] != wantScores[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestStagedCacheSeparation: staged and unstaged requests over the same
// user/m/filters must occupy distinct cache entries, and repeat staged
// requests must hit theirs.
func TestStagedCacheSeparation(t *testing.T) {
	e := NewEngine(&fixedScorer{scores: [][]float64{{5, 4, 3, 2, 1}}}, Config{CacheSize: 16})
	floor := []Stage{ScoreFloor(3.5)}

	plain, _, _ := e.TopM(0, 3)
	staged, _, cached := e.TopMStaged(0, 3, floor)
	if cached {
		t.Error("first staged request reported cached (would have returned the unstaged list)")
	}
	if fmt.Sprint(staged) == fmt.Sprint(plain) {
		t.Fatalf("staged request returned the unstaged list %v", plain)
	}
	if fmt.Sprint(staged) != "[0 1]" {
		t.Errorf("floor=3.5 head %v, want [0 1]", staged)
	}
	if _, _, cached := e.TopMStaged(0, 3, floor); !cached {
		t.Error("repeat staged request missed the cache")
	}
	if _, _, cached := e.TopM(0, 3); !cached {
		t.Error("unstaged entry evicted by the staged one")
	}
	if e.CacheLen() != 2 {
		t.Errorf("cache holds %d entries, want 2", e.CacheLen())
	}
	// An empty stage key makes the request uncacheable, like an unkeyed
	// filter.
	if _, _, cached := e.TopMStaged(0, 3, []Stage{keyStage{""}}); cached {
		t.Error("uncacheable staged request reported cached")
	}
}
