package rank

import (
	"math"
	"math/rand"
	"testing"
)

// TopMBatch must be the per-user pipeline verbatim: for every user, in
// input order, the columns hold exactly what TopMStaged returns — same
// items, bit-identical scores, same cache interaction.
func TestTopMBatchMatchesTopMStaged(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	scores := make([][]float64, 12)
	for u := range scores {
		scores[u] = make([]float64, 40)
		for i := range scores[u] {
			scores[u][i] = rng.Float64()
		}
	}
	for _, workers := range []int{1, 4} {
		sc := &fixedScorer{scores: scores}
		e := NewEngine(sc, Config{CacheSize: 64})
		ref := NewEngine(&fixedScorer{scores: scores}, Config{CacheSize: 64})
		users := []int{3, 0, 7, 3, 11, 5}
		filters := []Filter{ExcludeItems([]int{2, 9})}
		stages := []Stage{ScoreFloor(0.1)}
		filtersFor := func(i int) ([]Filter, bool) {
			if users[i] == 5 {
				return nil, false // simulate a serving-layer rejection
			}
			return filters, true
		}
		var cols BatchCols
		e.TopMBatch(users, 6, workers, stages, filtersFor, &cols)
		if len(cols.Counts) != len(users) || len(cols.Cached) != len(users) {
			t.Fatalf("workers=%d: got %d counts for %d users", workers, len(cols.Counts), len(users))
		}
		at := 0
		for i, u := range users {
			n := int(cols.Counts[i])
			if u == 5 {
				if n != 0 {
					t.Fatalf("workers=%d: rejected user got %d items", workers, n)
				}
				continue
			}
			wantItems, wantScores, _ := ref.TopMStaged(u, 6, stages, filters...)
			if n != len(wantItems) {
				t.Fatalf("workers=%d user %d: %d items, want %d", workers, u, n, len(wantItems))
			}
			for j := 0; j < n; j++ {
				if int(cols.Items[at+j]) != wantItems[j] {
					t.Fatalf("workers=%d user %d item %d: %d != %d", workers, u, j, cols.Items[at+j], wantItems[j])
				}
				if math.Float64bits(cols.Scores[at+j]) != math.Float64bits(wantScores[j]) {
					t.Fatalf("workers=%d user %d score %d differs", workers, u, j)
				}
			}
			at += n
		}
		// The duplicated user (3) must have hit the cache on its second
		// appearance, exactly like two sequential TopMStaged calls.
		if hits := e.Stats().Hits() + e.Stats().Coalesced(); hits < 1 {
			t.Fatalf("workers=%d: duplicate user missed the cache (hits+coalesced=%d)", workers, hits)
		}
	}
}

// Batch results are copied out of the cache-shared slices: mutating the
// columns must not corrupt a later cache hit.
func TestTopMBatchCopiesOutOfCache(t *testing.T) {
	sc := &fixedScorer{scores: [][]float64{{5, 4, 3, 2, 1}}}
	e := NewEngine(sc, Config{CacheSize: 8})
	var cols BatchCols
	e.TopMBatch([]int{0}, 3, 1, nil, func(int) ([]Filter, bool) { return nil, true }, &cols)
	for i := range cols.Items {
		cols.Items[i] = 999
		cols.Scores[i] = -1
	}
	items, scores, cached := e.TopM(0, 3)
	if !cached {
		t.Fatal("expected a cache hit after the batch")
	}
	if items[0] != 0 || scores[0] != 5 {
		t.Fatalf("cache entry corrupted by column mutation: %v %v", items, scores)
	}
}
