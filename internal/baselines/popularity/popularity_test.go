package popularity

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestCounts(t *testing.T) {
	m := Train(sparse.FromDense([][]bool{
		{true, true, false},
		{true, false, false},
		{true, false, false},
	}))
	if m.Count(0) != 3 || m.Count(1) != 1 || m.Count(2) != 0 {
		t.Fatalf("counts = %d %d %d", m.Count(0), m.Count(1), m.Count(2))
	}
	dst := make([]float64, 3)
	m.ScoreUser(2, dst)
	if dst[0] != 3 || dst[1] != 1 || dst[2] != 0 {
		t.Fatalf("scores = %v", dst)
	}
}

func TestShape(t *testing.T) {
	m := Train(sparse.NewBuilder(5, 7).Build())
	if m.NumUsers() != 5 || m.NumItems() != 7 {
		t.Fatal("shape wrong")
	}
}

func TestRanksPopularFirst(t *testing.T) {
	d := dataset.SyntheticSmall(50)
	sp := dataset.SplitEntries(d.R, 0.75, rng.New(50))
	m := Train(sp.Train)
	top := eval.TopM(m, sp.Train, 0, 3, nil)
	for n := 1; n < len(top); n++ {
		if m.Count(top[n]) > m.Count(top[n-1]) {
			t.Fatalf("ranking not by popularity: %v", top)
		}
	}
}

// TestPersonalizedBeatsPopularity: OCuLaR must clear the non-personalized
// floor on planted co-cluster data, where personalization carries signal.
func TestPersonalizedBeatsPopularity(t *testing.T) {
	d := dataset.SyntheticSmall(51)
	sp := dataset.SplitEntries(d.R, 0.75, rng.New(51))
	pop := eval.Evaluate(Train(sp.Train), sp.Train, sp.Test, 20)
	res, err := core.Train(sp.Train, core.Config{K: 8, Lambda: 2, MaxIter: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ocu := eval.Evaluate(res.Model, sp.Train, sp.Test, 20)
	if ocu.RecallAtM <= pop.RecallAtM {
		t.Fatalf("OCuLaR recall %v does not beat popularity %v", ocu.RecallAtM, pop.RecallAtM)
	}
}
