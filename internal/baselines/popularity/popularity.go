// Package popularity implements the non-personalized most-popular baseline:
// every user is recommended the globally most-purchased items they do not
// own yet. OCCF papers use it as the floor any personalized method must
// clear; it also quantifies how much of a dataset's recall is explained by
// popularity skew alone.
package popularity

import "repro/internal/sparse"

// Model scores items by global popularity. It implements eval.Recommender.
type Model struct {
	users  int
	counts []float64 // per-item positive counts
}

// Train counts item popularity in r.
func Train(r *sparse.Matrix) *Model {
	m := &Model{users: r.Rows(), counts: make([]float64, r.Cols())}
	r.Each(func(_, i int) { m.counts[i]++ })
	return m
}

// NumUsers returns the number of users the model was trained on.
func (m *Model) NumUsers() int { return m.users }

// NumItems returns the number of items the model was trained on.
func (m *Model) NumItems() int { return len(m.counts) }

// Count returns the training popularity of item i.
func (m *Model) Count(i int) int { return int(m.counts[i]) }

// ScoreUser writes the same popularity scores for every user.
func (m *Model) ScoreUser(_ int, dst []float64) {
	copy(dst, m.counts)
}
