package wals

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/linalg"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestValidation(t *testing.T) {
	m := sparse.NewBuilder(3, 3).Build()
	bad := []Config{
		{K: 0, B: 0.01},
		{K: 2, B: 0},
		{K: 2, B: 1.5},
		{K: 2, B: 0.01, Lambda: -1},
		{K: 2, B: 0.01, Iters: -3},
	}
	for i, cfg := range bad {
		if _, err := Train(m, cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

func TestLossDecreasesMonotonically(t *testing.T) {
	// Exact block minimization must not increase the weighted loss.
	r := rng.New(1)
	b := sparse.NewBuilder(25, 20)
	for n := 0; n < 120; n++ {
		b.Add(r.Intn(25), r.Intn(20))
	}
	m := b.Build()
	cfg := Config{K: 4, B: 0.05, Lambda: 0.05, Seed: 3}
	prev := math.Inf(1)
	for iters := 1; iters <= 6; iters++ {
		cfg.Iters = iters
		mod, err := Train(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		loss := mod.Loss(m, cfg.B, cfg.Lambda)
		if loss > prev+1e-9*math.Abs(prev) {
			t.Fatalf("loss increased from %v to %v at %d iters", prev, loss, iters)
		}
		prev = loss
	}
}

func TestHalfStepSolvesExactly(t *testing.T) {
	// After a user half-step, each user row must satisfy its normal
	// equations: (b·G + (1−b)Σ g gᵀ + λI) f = Σ g.
	r := rng.New(2)
	b := sparse.NewBuilder(10, 8)
	for n := 0; n < 40; n++ {
		b.Add(r.Intn(10), r.Intn(8))
	}
	m := b.Build()
	cfg := Config{K: 3, B: 0.1, Lambda: 0.2, Iters: 1, Seed: 5}.withDefaults()
	mod, err := Train(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := cfg.K
	// Re-build the system for user 0 against the final item factors (the
	// user half-step runs first in each sweep, so verify the item side,
	// which ran last).
	rt := m.Transpose()
	gram := linalg.NewMat(k, k)
	for u := 0; u < m.Rows(); u++ {
		linalg.SymRankKUpdate(gram, mod.UserFactor(u))
	}
	for i := 0; i < m.Cols(); i++ {
		a := linalg.NewMat(k, k)
		for n := 0; n < k*k; n++ {
			a.Data[n] = cfg.B * gram.Data[n]
		}
		rhs := make([]float64, k)
		for _, uc := range rt.Row(i) {
			g := mod.UserFactor(int(uc))
			for ii := 0; ii < k; ii++ {
				for jj := 0; jj < k; jj++ {
					a.AddTo(ii, jj, (1-cfg.B)*g[ii]*g[jj])
				}
			}
			linalg.Axpy(1, g, rhs)
		}
		linalg.AddDiag(a, cfg.Lambda)
		lhs := make([]float64, k)
		linalg.MatVec(lhs, a, mod.ItemFactor(i))
		if linalg.MaxAbsDiff(lhs, rhs) > 1e-8 {
			t.Fatalf("item %d: normal equations violated by %v", i, linalg.MaxAbsDiff(lhs, rhs))
		}
	}
}

func TestDeterminism(t *testing.T) {
	d := dataset.SyntheticSmall(4)
	cfg := Config{K: 5, B: 0.01, Lambda: 0.01, Iters: 3, Seed: 9}
	a, err := Train(d.R, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Train(d.R, cfg)
	for i := range a.fu {
		if a.fu[i] != b.fu[i] {
			t.Fatal("same seed produced different factors")
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	d := dataset.SyntheticSmall(5)
	cfg := Config{K: 5, B: 0.01, Lambda: 0.01, Iters: 3, Seed: 9}
	s, _ := Train(d.R, cfg)
	cfg.Workers = 4
	p, _ := Train(d.R, cfg)
	for i := range s.fu {
		if s.fu[i] != p.fu[i] {
			t.Fatal("parallel factors differ from serial")
		}
	}
	for i := range s.fi {
		if s.fi[i] != p.fi[i] {
			t.Fatal("parallel item factors differ from serial")
		}
	}
}

func TestScoreUserMatchesPredict(t *testing.T) {
	d := dataset.SyntheticSmall(6)
	mod, _ := Train(d.R, Config{K: 4, B: 0.02, Lambda: 0.05, Iters: 3, Seed: 1})
	dst := make([]float64, d.Items())
	mod.ScoreUser(7, dst)
	for i := range dst {
		if dst[i] != mod.Predict(7, i) {
			t.Fatalf("ScoreUser[%d] = %v, Predict = %v", i, dst[i], mod.Predict(7, i))
		}
	}
}

func TestRecommendationQuality(t *testing.T) {
	d := dataset.SyntheticSmall(7)
	sp := dataset.SplitEntries(d.R, 0.75, rng.New(11))
	mod, err := Train(sp.Train, Config{K: 10, B: 0.01, Lambda: 0.01, Iters: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := eval.Evaluate(mod, sp.Train, sp.Test, 20)
	if m.RecallAtM < 0.4 {
		t.Errorf("wALS recall@20 = %v on planted data, want > 0.4", m.RecallAtM)
	}
}

func TestFitsPositivesAboveUnknowns(t *testing.T) {
	toy := dataset.PaperToy()
	mod, err := Train(toy.R, Config{K: 3, B: 0.01, Lambda: 0.01, Iters: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var posSum, posN, unkSum, unkN float64
	for u := 0; u < toy.Users(); u++ {
		for i := 0; i < toy.Items(); i++ {
			if toy.R.Has(u, i) {
				posSum += mod.Predict(u, i)
				posN++
			} else {
				unkSum += mod.Predict(u, i)
				unkN++
			}
		}
	}
	if posSum/posN < 3*(unkSum/unkN) {
		t.Errorf("mean positive score %v not well above mean unknown score %v", posSum/posN, unkSum/unkN)
	}
}

func BenchmarkTrainIteration(b *testing.B) {
	d := dataset.SyntheticSmall(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(d.R, Config{K: 10, B: 0.01, Lambda: 0.01, Iters: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
