// Package wals implements weighted Alternating Least Squares, the
// state-of-the-art one-class matrix factorization baseline of the paper
// (Pan et al., "One-class collaborative filtering", ICDM 2008; eq. (8) of
// the OCuLaR paper).
//
// The model minimizes
//
//	Σ_{u,i} w_ui (r_ui − ⟨f_u, f_i⟩)² + λ Σ‖f_u‖² + λ Σ‖f_i‖²
//
// with w_ui = 1 on positives and w_ui = b < 1 on unknowns (which are
// treated as weak negatives). Each ALS half-step solves a K×K
// ridge-regularized normal system per row exactly (Cholesky), using the
// Gram-matrix trick: FᵀWF = b·FᵀF + (1−b)·Σ_{positives} f fᵀ, so a full
// sweep costs O(nnz·K² + (n_u+n_i)·K³).
package wals

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// Config holds wALS hyper-parameters. The paper's experiments fix B = 0.01
// and Lambda = 0.01 and grid-search K.
type Config struct {
	// K is the latent dimension. Required, >= 1.
	K int
	// B is the weight w_ui given to unknown (r_ui = 0) examples, 0 < B <= 1.
	B float64
	// Lambda is the ℓ2 regularization weight, >= 0.
	Lambda float64
	// Iters is the number of ALS sweeps (item half-step plus user
	// half-step). Default 15.
	Iters int
	// Seed seeds the factor initialization.
	Seed uint64
	// Workers parallelizes the per-row solves; 0 or 1 is serial.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Iters == 0 {
		c.Iters = 15
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.K < 1:
		return fmt.Errorf("wals: K must be >= 1, got %d", c.K)
	case c.B <= 0 || c.B > 1:
		return fmt.Errorf("wals: B must be in (0,1], got %v", c.B)
	case c.Lambda < 0:
		return fmt.Errorf("wals: Lambda must be >= 0, got %v", c.Lambda)
	case c.Iters < 1:
		return fmt.Errorf("wals: Iters must be >= 1, got %d", c.Iters)
	}
	return nil
}

// Model holds fitted wALS factors; it implements eval.Recommender. Unlike
// OCuLaR factors, these are unconstrained in sign, which is precisely why
// the paper deems them hard to interpret.
type Model struct {
	k            int
	users, items int
	fu, fi       []float64 // flat, stride k
}

// K returns the latent dimension.
func (m *Model) K() int { return m.k }

// NumUsers returns the number of users the model was trained on.
func (m *Model) NumUsers() int { return m.users }

// NumItems returns the number of items the model was trained on.
func (m *Model) NumItems() int { return m.items }

// UserFactor returns user u's latent vector (aliases model storage).
func (m *Model) UserFactor(u int) []float64 { return m.fu[u*m.k : (u+1)*m.k] }

// ItemFactor returns item i's latent vector (aliases model storage).
func (m *Model) ItemFactor(i int) []float64 { return m.fi[i*m.k : (i+1)*m.k] }

// Predict returns the reconstructed affinity ⟨f_u, f_i⟩.
func (m *Model) Predict(u, i int) float64 {
	return linalg.Dot(m.UserFactor(u), m.ItemFactor(i))
}

// ScoreUser writes ⟨f_u, f_i⟩ for all items into dst.
func (m *Model) ScoreUser(u int, dst []float64) {
	fu := m.UserFactor(u)
	for i := 0; i < m.items; i++ {
		dst[i] = linalg.Dot(fu, m.ItemFactor(i))
	}
}

// Loss evaluates the weighted squared objective on r, for convergence tests
// and the ablation benchmarks. Cost is O(n_u·n_i·K); use on small inputs.
func (m *Model) Loss(r *sparse.Matrix, b, lambda float64) float64 {
	loss := 0.0
	for u := 0; u < m.users; u++ {
		for i := 0; i < m.items; i++ {
			d := m.Predict(u, i)
			if r.Has(u, i) {
				loss += (1 - d) * (1 - d)
			} else {
				loss += b * d * d
			}
		}
	}
	return loss + lambda*(linalg.Norm2Sq(m.fu)+linalg.Norm2Sq(m.fi))
}

// Train fits a wALS model to the positives in r.
func Train(r *sparse.Matrix, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k := cfg.K
	m := &Model{
		k:     k,
		users: r.Rows(),
		items: r.Cols(),
		fu:    make([]float64, r.Rows()*k),
		fi:    make([]float64, r.Cols()*k),
	}
	rnd := rng.New(cfg.Seed)
	scale := math.Sqrt(1 / float64(k))
	for i := range m.fu {
		m.fu[i] = rnd.Float64() * scale
	}
	for i := range m.fi {
		m.fi[i] = rnd.Float64() * scale
	}
	rt := r.Transpose()
	for it := 0; it < cfg.Iters; it++ {
		halfStep(m.fu, m.fi, r, cfg)  // solve users against fixed items
		halfStep(m.fi, m.fu, rt, cfg) // solve items against fixed users
	}
	return m, nil
}

// halfStep solves, for every row of rows (a n_rows x n_cols positives
// matrix), the ridge system
//
//	(b·G + (1−b)·Σ_{c ∈ row} g_c g_cᵀ + λI) f = Σ_{c ∈ row} g_c
//
// where G = Σ_c g_c g_cᵀ is the Gram matrix of the fixed block fixed.
func halfStep(target, fixed []float64, rows *sparse.Matrix, cfg Config) {
	k := cfg.K
	gram := linalg.NewMat(k, k)
	for off := 0; off < len(fixed); off += k {
		linalg.SymRankKUpdate(gram, fixed[off:off+k])
	}
	parallel.For(rows.Rows(), cfg.Workers, func(row int, scratch *parallel.Scratch) {
		buf := scratch.Float64s(k*k + k)
		a := &linalg.Mat{RowsN: k, ColsN: k, Data: buf[:k*k]}
		rhs := buf[k*k:]
		for i := 0; i < k*k; i++ {
			a.Data[i] = cfg.B * gram.Data[i]
		}
		for _, c := range rows.Row(row) {
			g := fixed[int(c)*k : (int(c)+1)*k]
			// (1−b) upgrade of the positive examples' weight from b to 1.
			for ii := 0; ii < k; ii++ {
				gi := g[ii] * (1 - cfg.B)
				if gi == 0 {
					continue
				}
				arow := a.Row(ii)
				for jj := 0; jj < k; jj++ {
					arow[jj] += gi * g[jj]
				}
			}
			linalg.Axpy(1, g, rhs)
		}
		linalg.AddDiag(a, cfg.Lambda)
		// SolveSPD overwrites rhs with the solution; only commit it to the
		// factor row on success. λ > 0 makes the system SPD; with λ = 0 and
		// a degenerate Gram matrix the row is left unchanged.
		if err := linalg.SolveSPD(a, rhs); err == nil {
			copy(target[row*k:(row+1)*k], rhs)
		}
	})
}
