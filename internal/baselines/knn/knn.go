// Package knn implements the two interpretable neighborhood baselines of
// Section VII-B2: user-based and item-based collaborative filtering with
// cosine similarity (Sarwar et al. 2000; Deshpande & Karypis 2004).
//
// On binary one-class data, the cosine similarity of users u and v reduces
// to |I_u ∩ I_v| / √(|I_u|·|I_v|), and analogously for items. A model keeps
// the top-N neighbor lists; scoring aggregates neighbor similarity mass
// over their purchases, producing the "similar users also bought" /
// "user bought similar items" style of recommendation the paper compares
// against.
package knn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
	"repro/internal/sparse"
)

// Config holds the single hyper-parameter of both baselines: the
// neighborhood size, tuned by grid search in the paper's protocol.
type Config struct {
	// Neighbors is the number of nearest neighbors kept per user (or item).
	// Required, >= 1.
	Neighbors int
	// Workers parallelizes the all-pairs similarity computation; 0 or 1 is
	// serial.
	Workers int
}

func (c Config) validate() error {
	if c.Neighbors < 1 {
		return fmt.Errorf("knn: Neighbors must be >= 1, got %d", c.Neighbors)
	}
	return nil
}

// neighbor is one entry of a similarity list.
type neighbor struct {
	idx int32
	sim float64
}

// UserModel scores items through similar users. It implements
// eval.Recommender.
type UserModel struct {
	users, items int
	r            *sparse.Matrix
	nbrs         [][]neighbor // per user, sorted by descending similarity
}

// TrainUser builds a user-based CF model from the positives in r.
func TrainUser(r *sparse.Matrix, cfg Config) (*UserModel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &UserModel{users: r.Rows(), items: r.Cols(), r: r}
	m.nbrs = topNeighbors(r, cfg)
	return m, nil
}

// NumUsers returns the number of users the model was trained on.
func (m *UserModel) NumUsers() int { return m.users }

// NumItems returns the number of items the model was trained on.
func (m *UserModel) NumItems() int { return m.items }

// Neighbors returns user u's neighbor indices and cosine similarities, in
// descending similarity order. The explanation layer uses this to name the
// "similar clients". The returned slices are freshly allocated.
func (m *UserModel) Neighbors(u int) (idx []int, sim []float64) {
	return splitNeighbors(m.nbrs[u])
}

// ScoreUser accumulates, for every item, the similarity mass of the
// neighbors of u that bought it: score(u,i) = Σ_{v ∈ N(u)} sim(u,v)·r_vi.
func (m *UserModel) ScoreUser(u int, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for _, nb := range m.nbrs[u] {
		for _, i := range m.r.Row(int(nb.idx)) {
			dst[i] += nb.sim
		}
	}
}

// ItemModel scores items through the user's own purchases. It implements
// eval.Recommender.
type ItemModel struct {
	users, items int
	r            *sparse.Matrix
	nbrs         [][]neighbor // per item, sorted by descending similarity
}

// TrainItem builds an item-based CF model from the positives in r.
func TrainItem(r *sparse.Matrix, cfg Config) (*ItemModel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rt := r.Transpose()
	m := &ItemModel{users: r.Rows(), items: r.Cols(), r: r}
	m.nbrs = topNeighbors(rt, cfg)
	return m, nil
}

// NumUsers returns the number of users the model was trained on.
func (m *ItemModel) NumUsers() int { return m.users }

// NumItems returns the number of items the model was trained on.
func (m *ItemModel) NumItems() int { return m.items }

// Neighbors returns item i's neighbor indices and cosine similarities, in
// descending similarity order.
func (m *ItemModel) Neighbors(i int) (idx []int, sim []float64) {
	return splitNeighbors(m.nbrs[i])
}

// ScoreUser accumulates similarity from each purchased item j to its
// neighbor items: score(u,i) = Σ_{j ∈ I_u} sim(i,j)·1{i ∈ N(j)}.
func (m *ItemModel) ScoreUser(u int, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for _, j := range m.r.Row(u) {
		for _, nb := range m.nbrs[int(j)] {
			dst[nb.idx] += nb.sim
		}
	}
}

// topNeighbors computes, for every row of r, its Neighbors most cosine-
// similar other rows. Intersections are accumulated by walking co-occurring
// rows through the transpose, which costs Σ_r Σ_{c ∈ r} deg(c) — far below
// the dense all-pairs bound on sparse data.
func topNeighbors(r *sparse.Matrix, cfg Config) [][]neighbor {
	rt := r.Transpose()
	n := r.Rows()
	out := make([][]neighbor, n)
	parallel.For(n, cfg.Workers, func(u int, scratch *parallel.Scratch) {
		counts := scratch.Float64s(n)
		row := r.Row(u)
		for _, c := range row {
			for _, v := range rt.Row(int(c)) {
				counts[v]++
			}
		}
		du := float64(len(row))
		if du == 0 {
			out[u] = nil
			return
		}
		cands := make([]neighbor, 0, 64)
		for v := range counts {
			if v == u || counts[v] == 0 {
				continue
			}
			sim := counts[v] / math.Sqrt(du*float64(r.RowNNZ(v)))
			cands = append(cands, neighbor{idx: int32(v), sim: sim})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].sim != cands[b].sim {
				return cands[a].sim > cands[b].sim
			}
			return cands[a].idx < cands[b].idx
		})
		if len(cands) > cfg.Neighbors {
			cands = cands[:cfg.Neighbors]
		}
		out[u] = append([]neighbor(nil), cands...)
	})
	return out
}

func splitNeighbors(nbrs []neighbor) (idx []int, sim []float64) {
	idx = make([]int, len(nbrs))
	sim = make([]float64, len(nbrs))
	for n, nb := range nbrs {
		idx[n] = int(nb.idx)
		sim[n] = nb.sim
	}
	return idx, sim
}
