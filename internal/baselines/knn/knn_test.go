package knn

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestValidation(t *testing.T) {
	m := sparse.NewBuilder(2, 2).Build()
	if _, err := TrainUser(m, Config{Neighbors: 0}); err == nil {
		t.Error("user model accepted Neighbors=0")
	}
	if _, err := TrainItem(m, Config{}); err == nil {
		t.Error("item model accepted zero config")
	}
}

func TestUserCosineHandComputed(t *testing.T) {
	// u0: {0,1}, u1: {1,2}, u2: {0,1,2}.
	m := sparse.FromDense([][]bool{
		{true, true, false},
		{false, true, true},
		{true, true, true},
	})
	um, err := TrainUser(m, Config{Neighbors: 5})
	if err != nil {
		t.Fatal(err)
	}
	idx, sim := um.Neighbors(0)
	// sim(0,1) = 1/sqrt(4) = 0.5; sim(0,2) = 2/sqrt(6) ≈ 0.816. Order: 2, 1.
	if len(idx) != 2 || idx[0] != 2 || idx[1] != 1 {
		t.Fatalf("neighbors of u0 = %v", idx)
	}
	if math.Abs(sim[0]-2/math.Sqrt(6)) > 1e-12 || math.Abs(sim[1]-0.5) > 1e-12 {
		t.Fatalf("similarities = %v", sim)
	}
}

func TestItemCosineHandComputed(t *testing.T) {
	// Transposed view of the same logic: i0: {u0,u2}, i1: {u0,u1,u2}, i2: {u1,u2}.
	m := sparse.FromDense([][]bool{
		{true, true, false},
		{false, true, true},
		{true, true, true},
	})
	im, err := TrainItem(m, Config{Neighbors: 5})
	if err != nil {
		t.Fatal(err)
	}
	idx, sim := im.Neighbors(0)
	// sim(i0,i1) = 2/sqrt(6) ≈ 0.816; sim(i0,i2) = 1/2.
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 2 {
		t.Fatalf("neighbors of i0 = %v", idx)
	}
	if math.Abs(sim[0]-2/math.Sqrt(6)) > 1e-12 || math.Abs(sim[1]-0.5) > 1e-12 {
		t.Fatalf("similarities = %v", sim)
	}
}

func TestNeighborTruncation(t *testing.T) {
	r := rng.New(1)
	b := sparse.NewBuilder(30, 20)
	for k := 0; k < 300; k++ {
		b.Add(r.Intn(30), r.Intn(20))
	}
	m := b.Build()
	um, _ := TrainUser(m, Config{Neighbors: 3})
	for u := 0; u < 30; u++ {
		idx, sim := um.Neighbors(u)
		if len(idx) > 3 {
			t.Fatalf("user %d has %d neighbors, cap 3", u, len(idx))
		}
		for n := 1; n < len(sim); n++ {
			if sim[n] > sim[n-1] {
				t.Fatalf("user %d: similarities not descending: %v", u, sim)
			}
		}
	}
}

func TestScoreUserAggregation(t *testing.T) {
	// u0 and u1 are identical; u1 also bought item 2. User-based scoring for
	// u0 should put item 2 above item 3 (bought by the less similar u2).
	m := sparse.FromDense([][]bool{
		{true, true, false, false},
		{true, true, true, false},
		{true, false, false, true},
	})
	um, _ := TrainUser(m, Config{Neighbors: 2})
	dst := make([]float64, 4)
	um.ScoreUser(0, dst)
	if dst[2] <= dst[3] {
		t.Fatalf("score(i2)=%v should exceed score(i3)=%v", dst[2], dst[3])
	}
}

func TestEmptyUserScoresZero(t *testing.T) {
	b := sparse.NewBuilder(3, 3)
	b.Add(0, 0)
	b.Add(1, 1)
	m := b.Build()
	um, _ := TrainUser(m, Config{Neighbors: 2})
	dst := []float64{9, 9, 9}
	um.ScoreUser(2, dst)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("empty user score[%d] = %v", i, v)
		}
	}
	im, _ := TrainItem(m, Config{Neighbors: 2})
	dst = []float64{9, 9, 9}
	im.ScoreUser(2, dst)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("item-based empty user score[%d] = %v", i, v)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	d := dataset.SyntheticSmall(2)
	serial, _ := TrainUser(d.R, Config{Neighbors: 10, Workers: 1})
	par, _ := TrainUser(d.R, Config{Neighbors: 10, Workers: 4})
	for u := 0; u < d.Users(); u++ {
		si, ss := serial.Neighbors(u)
		pi, ps := par.Neighbors(u)
		if len(si) != len(pi) {
			t.Fatalf("user %d neighbor count differs", u)
		}
		for n := range si {
			if si[n] != pi[n] || ss[n] != ps[n] {
				t.Fatalf("user %d neighbor %d differs", u, n)
			}
		}
	}
}

func TestRecoversPlantedStructure(t *testing.T) {
	// Both baselines should comfortably beat random ranking on planted
	// co-cluster data.
	d := dataset.SyntheticSmall(3)
	sp := dataset.SplitEntries(d.R, 0.75, rng.New(7))
	um, _ := TrainUser(sp.Train, Config{Neighbors: 20})
	im, _ := TrainItem(sp.Train, Config{Neighbors: 20})
	mu := eval.Evaluate(um, sp.Train, sp.Test, 20)
	mi := eval.Evaluate(im, sp.Train, sp.Test, 20)
	// Random recall@20 on 80 items is ~20/80 = 0.25 of remaining items at
	// best; planted structure should push well above.
	if mu.RecallAtM < 0.35 {
		t.Errorf("user-based recall@20 = %v, want > 0.35", mu.RecallAtM)
	}
	if mi.RecallAtM < 0.35 {
		t.Errorf("item-based recall@20 = %v, want > 0.35", mi.RecallAtM)
	}
}

func BenchmarkTrainUser(b *testing.B) {
	d := dataset.SyntheticSmall(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainUser(d.R, Config{Neighbors: 20}); err != nil {
			b.Fatal(err)
		}
	}
}
