package bpr

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestValidation(t *testing.T) {
	m := sparse.NewBuilder(3, 3).Build()
	bad := []Config{
		{K: 0},
		{K: 2, LearnRate: -1},
		{K: 2, Lambda: -1},
		{K: 2, Epochs: -1},
	}
	for i, cfg := range bad {
		if _, err := Train(m, cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

func TestEmptyMatrixTrains(t *testing.T) {
	m := sparse.NewBuilder(4, 4).Build()
	mod, err := Train(m, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mod.NumUsers() != 4 || mod.NumItems() != 4 {
		t.Fatal("shape wrong")
	}
}

func TestDeterminism(t *testing.T) {
	d := dataset.SyntheticSmall(1)
	cfg := Config{K: 4, Epochs: 2, Seed: 5}
	a, err := Train(d.R, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Train(d.R, cfg)
	for i := range a.fu {
		if a.fu[i] != b.fu[i] {
			t.Fatal("same seed produced different factors")
		}
	}
}

func TestTrainingReducesRankLoss(t *testing.T) {
	d := dataset.SyntheticSmall(2)
	before, err := Train(d.R, Config{K: 8, Epochs: 1, LearnRate: 1e-9, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Train(d.R, Config{K: 8, Epochs: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lossBefore := before.MeanRankLoss(d.R, 5000, rng.New(7))
	lossAfter := after.MeanRankLoss(d.R, 5000, rng.New(7))
	if lossAfter >= lossBefore {
		t.Fatalf("rank loss did not improve: %v -> %v", lossBefore, lossAfter)
	}
}

func TestRanksPositivesAboveUnknowns(t *testing.T) {
	toy := dataset.PaperToy()
	mod, err := Train(toy.R, Config{K: 4, Epochs: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// For users with positives, the mean score of positives should exceed
	// the mean score of unknowns.
	for u := 0; u < toy.Users(); u++ {
		if toy.R.RowNNZ(u) == 0 {
			continue
		}
		var pos, posN, unk, unkN float64
		for i := 0; i < toy.Items(); i++ {
			if toy.R.Has(u, i) {
				pos += mod.Predict(u, i)
				posN++
			} else {
				unk += mod.Predict(u, i)
				unkN++
			}
		}
		if pos/posN <= unk/unkN {
			t.Errorf("user %d: mean positive score %v <= mean unknown score %v", u, pos/posN, unk/unkN)
		}
	}
}

func TestRecommendationQuality(t *testing.T) {
	d := dataset.SyntheticSmall(3)
	sp := dataset.SplitEntries(d.R, 0.75, rng.New(13))
	mod, err := Train(sp.Train, Config{K: 10, Epochs: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := eval.Evaluate(mod, sp.Train, sp.Test, 20)
	if m.RecallAtM < 0.3 {
		t.Errorf("BPR recall@20 = %v on planted data, want > 0.3", m.RecallAtM)
	}
}

func TestSamplerProducesValidTriples(t *testing.T) {
	d := dataset.SyntheticSmall(4)
	s := newSampler(d.R)
	if s == nil {
		t.Fatal("sampler nil on non-empty data")
	}
	r := rng.New(17)
	for n := 0; n < 2000; n++ {
		u, i, j := s.draw(r)
		if !d.R.Has(u, i) {
			t.Fatalf("triple (%d,%d,%d): i not positive", u, i, j)
		}
		if d.R.Has(u, j) {
			t.Fatalf("triple (%d,%d,%d): j is positive", u, i, j)
		}
	}
}

func TestSamplerNilWhenNoTriples(t *testing.T) {
	// All users bought everything: no (i, j) contrast exists.
	full := sparse.FromDense([][]bool{{true, true}, {true, true}})
	if newSampler(full) != nil {
		t.Fatal("sampler should be nil for full matrix")
	}
	if newSampler(sparse.NewBuilder(3, 3).Build()) != nil {
		t.Fatal("sampler should be nil for empty matrix")
	}
}

func TestScoreUserMatchesPredict(t *testing.T) {
	d := dataset.SyntheticSmall(5)
	mod, _ := Train(d.R, Config{K: 4, Epochs: 2, Seed: 1})
	dst := make([]float64, d.Items())
	mod.ScoreUser(3, dst)
	for i := range dst {
		if dst[i] != mod.Predict(3, i) {
			t.Fatalf("ScoreUser[%d] mismatch", i)
		}
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	d := dataset.SyntheticSmall(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(d.R, Config{K: 10, Epochs: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
