// Package bpr implements Bayesian Personalized Ranking matrix factorization
// (Rendle et al., UAI 2009), the relative-preference baseline of Section
// VII-B2 of the paper.
//
// BPR converts the positives into the training triple set
// D_S = {(u,i,j) : r_ui = 1, r_uj = 0} and maximizes
//
//	Σ_{(u,i,j)} ln σ(⟨f_u,f_i⟩ − ⟨f_u,f_j⟩) − λ(‖f_u‖² + ‖f_i‖² + ‖f_j‖²)
//
// by stochastic gradient ascent with uniformly bootstrap-sampled triples
// (the LearnBPR algorithm of the original paper).
package bpr

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// Config holds BPR hyper-parameters. The paper grid-searches K and Lambda.
type Config struct {
	// K is the latent dimension. Required, >= 1.
	K int
	// LearnRate is the SGD step size α. Default 0.05.
	LearnRate float64
	// Lambda is the ℓ2 regularization weight applied to all three factors
	// of a triple. Default 0.0025 (the original paper's choice).
	Lambda float64
	// Epochs is the number of sweeps; each epoch draws nnz bootstrap
	// triples. Default 30.
	Epochs int
	// Seed seeds initialization and triple sampling.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.LearnRate == 0 {
		c.LearnRate = 0.05
	}
	if c.Lambda == 0 {
		c.Lambda = 0.0025
	}
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.K < 1:
		return fmt.Errorf("bpr: K must be >= 1, got %d", c.K)
	case c.LearnRate <= 0:
		return fmt.Errorf("bpr: LearnRate must be > 0, got %v", c.LearnRate)
	case c.Lambda < 0:
		return fmt.Errorf("bpr: Lambda must be >= 0, got %v", c.Lambda)
	case c.Epochs < 1:
		return fmt.Errorf("bpr: Epochs must be >= 1, got %d", c.Epochs)
	}
	return nil
}

// Model holds fitted BPR factors; it implements eval.Recommender. Scores
// are ⟨f_u, f_i⟩ — only their per-user ordering is meaningful, matching
// BPR's ranking objective.
type Model struct {
	k            int
	users, items int
	fu, fi       []float64
}

// K returns the latent dimension.
func (m *Model) K() int { return m.k }

// NumUsers returns the number of users the model was trained on.
func (m *Model) NumUsers() int { return m.users }

// NumItems returns the number of items the model was trained on.
func (m *Model) NumItems() int { return m.items }

// UserFactor returns user u's latent vector (aliases model storage).
func (m *Model) UserFactor(u int) []float64 { return m.fu[u*m.k : (u+1)*m.k] }

// ItemFactor returns item i's latent vector (aliases model storage).
func (m *Model) ItemFactor(i int) []float64 { return m.fi[i*m.k : (i+1)*m.k] }

// Predict returns the ranking score ⟨f_u, f_i⟩.
func (m *Model) Predict(u, i int) float64 {
	return linalg.Dot(m.UserFactor(u), m.ItemFactor(i))
}

// ScoreUser writes ⟨f_u, f_i⟩ for all items into dst.
func (m *Model) ScoreUser(u int, dst []float64) {
	fu := m.UserFactor(u)
	for i := 0; i < m.items; i++ {
		dst[i] = linalg.Dot(fu, m.ItemFactor(i))
	}
}

// MeanRankLoss estimates the BPR criterion −E ln σ(x_uij) over nSamples
// random triples, for convergence monitoring and tests.
func (m *Model) MeanRankLoss(r *sparse.Matrix, nSamples int, rnd *rng.RNG) float64 {
	s := newSampler(r)
	if s == nil {
		return 0
	}
	total := 0.0
	for n := 0; n < nSamples; n++ {
		u, i, j := s.draw(rnd)
		x := m.Predict(u, i) - m.Predict(u, j)
		total += math.Log1p(math.Exp(-x)) // −ln σ(x)
	}
	return total / float64(nSamples)
}

// Train fits a BPR model to the positives in r.
func Train(r *sparse.Matrix, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k := cfg.K
	m := &Model{
		k:     k,
		users: r.Rows(),
		items: r.Cols(),
		fu:    make([]float64, r.Rows()*k),
		fi:    make([]float64, r.Cols()*k),
	}
	rnd := rng.New(cfg.Seed)
	scale := math.Sqrt(1 / float64(k))
	for i := range m.fu {
		m.fu[i] = (rnd.Float64() - 0.5) * scale
	}
	for i := range m.fi {
		m.fi[i] = (rnd.Float64() - 0.5) * scale
	}
	s := newSampler(r)
	if s == nil {
		return m, nil // no usable triples: nothing to learn
	}
	steps := cfg.Epochs * r.NNZ()
	lr, lam := cfg.LearnRate, cfg.Lambda
	for n := 0; n < steps; n++ {
		u, i, j := s.draw(rnd)
		fu := m.fu[u*k : (u+1)*k]
		fi := m.fi[i*k : (i+1)*k]
		fj := m.fi[j*k : (j+1)*k]
		x := linalg.Dot(fu, fi) - linalg.Dot(fu, fj)
		e := 1 / (1 + math.Exp(x)) // σ(−x) = 1 − σ(x)
		for c := 0; c < k; c++ {
			gu := e*(fi[c]-fj[c]) - lam*fu[c]
			gi := e*fu[c] - lam*fi[c]
			gj := -e*fu[c] - lam*fj[c]
			fu[c] += lr * gu
			fi[c] += lr * gi
			fj[c] += lr * gj
		}
	}
	return m, nil
}

// sampler draws uniform bootstrap triples (u, i, j) with r_ui = 1 and
// r_uj = 0. Users are drawn proportionally to their number of positives
// (uniform over positive examples, as in LearnBPR's bootstrap over D_S).
type sampler struct {
	r        *sparse.Matrix
	rowOf    []int32 // positive example index -> user
	anyValid bool
}

func newSampler(r *sparse.Matrix) *sampler {
	if r.NNZ() == 0 {
		return nil
	}
	rows, _ := r.Coords()
	s := &sampler{r: r, rowOf: rows}
	// A triple needs a user with at least one positive and one unknown.
	for u := 0; u < r.Rows(); u++ {
		if n := r.RowNNZ(u); n > 0 && n < r.Cols() {
			s.anyValid = true
			break
		}
	}
	if !s.anyValid {
		return nil
	}
	return s
}

func (s *sampler) draw(rnd *rng.RNG) (u, i, j int) {
	for {
		n := rnd.Intn(len(s.rowOf))
		u = int(s.rowOf[n])
		row := s.r.Row(u)
		if len(row) == s.r.Cols() {
			continue // user bought everything; no negative item exists
		}
		i = int(row[rnd.Intn(len(row))])
		for {
			j = rnd.Intn(s.r.Cols())
			if !s.r.Has(u, j) {
				return u, i, j
			}
		}
	}
}
