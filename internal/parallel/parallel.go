// Package parallel is the execution engine substituting for the paper's GPU
// implementation (Section VI).
//
// The CUDA design launches one thread block per positive example, each
// computing a partial inner product in shared memory, reducing it, and
// accumulating the weighted factor vector into the item gradient with
// atomic adds. The same decomposition holds at a coarser grain: every item
// (and, in the user sweep, every user) owns a disjoint slice of the factor
// array, and its update depends only on the fixed block's factors plus the
// precomputed constant C = Σ f (the kernel's initialization value). Updates
// within a block are therefore embarrassingly parallel, and — unlike the
// atomic-add CUDA kernel — race-free without synchronization, so the
// parallel schedule is bit-identical to the serial one.
//
// For runs an index space over a worker pool with contiguous chunking
// (coalesced access, the CPU analogue of warp-contiguous reads). Each
// worker carries a Scratch arena so per-index updates allocate nothing.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Scratch is a per-worker reusable float64 arena. Get slices of it via
// Float64s; the slice is valid until the next Float64s call with a larger
// size. Scratch is not safe for concurrent use; For gives each worker its
// own.
type Scratch struct {
	buf []float64
}

// Float64s returns a zeroed slice of length n, reusing the arena when
// possible.
func (s *Scratch) Float64s(n int) []float64 {
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	b := s.buf[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

// DefaultWorkers returns the worker count used when a caller passes 0:
// the number of usable CPUs.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// For executes fn(i, scratch) for every i in [0, n). workers <= 1 runs
// serially on the calling goroutine. With multiple workers, indices are
// dealt in contiguous chunks via an atomic cursor, which balances load when
// per-index cost is skewed (items have wildly varying degree). fn must not
// touch state owned by other indices; under that contract results are
// identical for every worker count.
func For(n, workers int, fn func(i int, scratch *Scratch)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers == 1 || n == 1 {
		s := &Scratch{}
		for i := 0; i < n; i++ {
			fn(i, s)
		}
		return
	}
	if workers > n {
		workers = n
	}
	// Chunk size balances scheduling overhead against load balance; with
	// at least 8 chunks per worker the long-degree-tail items spread out.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := &Scratch{}
			for {
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i, s)
				}
			}
		}()
	}
	wg.Wait()
}

// SumVectors computes dst = Σ_r vecs[r·k : (r+1)·k] over rows rows, the
// parallel reduction behind the kernel constant C = Σ_u f_u. The reduction
// tree is deterministic: each worker sums a fixed contiguous range and the
// partials are combined in worker order, so results do not depend on
// scheduling.
func SumVectors(dst, flat []float64, k, workers int) {
	for i := range dst {
		dst[i] = 0
	}
	n := len(flat) / k
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for off := 0; off < len(flat); off += k {
			for c := 0; c < k; c++ {
				dst[c] += flat[off+c]
			}
		}
		return
	}
	partials := make([][]float64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	per := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			p := make([]float64, k)
			lo, hi := w*per, (w+1)*per
			if hi > n {
				hi = n
			}
			for r := lo; r < hi; r++ {
				off := r * k
				for c := 0; c < k; c++ {
					p[c] += flat[off+c]
				}
			}
			partials[w] = p
		}(w)
	}
	wg.Wait()
	for _, p := range partials {
		for c := 0; c < k; c++ {
			dst[c] += p[c]
		}
	}
}
