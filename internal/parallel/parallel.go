// Package parallel is the execution engine substituting for the paper's GPU
// implementation (Section VI).
//
// The CUDA design launches one thread block per positive example, each
// computing a partial inner product in shared memory, reducing it, and
// accumulating the weighted factor vector into the item gradient with
// atomic adds. The same decomposition holds at a coarser grain: every item
// (and, in the user sweep, every user) owns a disjoint slice of the factor
// array, and its update depends only on the fixed block's factors plus the
// precomputed constant C = Σ f (the kernel's initialization value). Updates
// within a block are therefore embarrassingly parallel, and — unlike the
// atomic-add CUDA kernel — race-free without synchronization, so the
// parallel schedule is bit-identical to the serial one.
//
// For runs an index space over a worker pool with contiguous chunking
// (coalesced access, the CPU analogue of warp-contiguous reads). Each
// worker carries a Scratch arena so per-index updates allocate nothing.
//
// SumVectors and ReduceSum are the package's deterministic reductions: the
// input is split into fixed-width blocks whose boundaries depend only on
// the input size, blocks are summed serially, and the partials are combined
// in block order. Results are therefore bit-identical for every worker
// count, which lets the trainer use them on its hot path without weakening
// the serial-equals-parallel contract above.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Scratch is a per-worker reusable arena. Get slices of it via Float64s and
// Ints; each slice is valid until the next call of the same getter with a
// larger size. Scratch is not safe for concurrent use; For gives each worker
// its own.
type Scratch struct {
	buf  []float64
	ints []int
}

// Float64s returns a zeroed slice of length n, reusing the arena when
// possible.
func (s *Scratch) Float64s(n int) []float64 {
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	b := s.buf[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

// Float64sRaw is Float64s without the zeroing pass, for callers that fully
// overwrite the slice before reading it — the training kernels' factor
// updates, where zeroing would cost O(K + |pos|) extra writes per
// subproblem. Contents are whatever a previous borrow left behind.
func (s *Scratch) Float64sRaw(n int) []float64 {
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	return s.buf[:n]
}

// Ints returns a zeroed []int of length n from a separate arena, with the
// same reuse discipline as Float64s. The training kernels borrow this arena
// through IntsRaw for the clamped/live coordinate index lists of the
// incremental line search; Ints is the zeroed counterpart for callers that
// read before (fully) writing.
func (s *Scratch) Ints(n int) []int {
	if cap(s.ints) < n {
		s.ints = make([]int, n)
	}
	b := s.ints[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

// IntsRaw is Ints without the zeroing pass; see Float64sRaw.
func (s *Scratch) IntsRaw(n int) []int {
	if cap(s.ints) < n {
		s.ints = make([]int, n)
	}
	return s.ints[:n]
}

// DefaultWorkers returns the worker count used when a caller passes 0:
// the number of usable CPUs.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// For executes fn(i, scratch) for every i in [0, n). workers <= 1 runs
// serially on the calling goroutine. With multiple workers, indices are
// dealt in contiguous chunks via an atomic cursor, which balances load when
// per-index cost is skewed (items have wildly varying degree). fn must not
// touch state owned by other indices; under that contract results are
// identical for every worker count.
func For(n, workers int, fn func(i int, scratch *Scratch)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers == 1 || n == 1 {
		s := &Scratch{}
		for i := 0; i < n; i++ {
			fn(i, s)
		}
		return
	}
	if workers > n {
		workers = n
	}
	// Chunk size balances scheduling overhead against load balance; with
	// at least 8 chunks per worker the long-degree-tail items spread out.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := &Scratch{}
			for {
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i, s)
				}
			}
		}()
	}
	wg.Wait()
}

// sumBlockRows is the fixed range width of the deterministic reductions
// below. Block boundaries depend only on the input size — never on the
// worker count — so every worker count produces the same summation tree
// and therefore bit-identical results. 256 rows per block keeps scheduling
// overhead negligible while giving enough blocks to balance load.
const sumBlockRows = 256

// SumVectors computes dst = Σ_r flat[r·k : (r+1)·k], the parallel reduction
// behind the kernel constant C = Σ_u f_u. Rows are summed in fixed
// 256-row blocks and the block partials are combined in block order, so the
// result is bit-identical for every worker count (including serial) — the
// guarantee the trainer's serial/parallel equivalence contract relies on.
func SumVectors(dst, flat []float64, k, workers int) {
	for i := range dst {
		dst[i] = 0
	}
	if k <= 0 {
		return
	}
	n := len(flat) / k
	if n == 0 {
		return
	}
	nb := (n + sumBlockRows - 1) / sumBlockRows
	if nb == 1 {
		// One block: accumulating straight into dst follows the same
		// addition sequence as the partial-combine path below.
		for off := 0; off < n*k; off += k {
			for c := 0; c < k; c++ {
				dst[c] += flat[off+c]
			}
		}
		return
	}
	partials := make([]float64, nb*k)
	For(nb, workers, func(b int, _ *Scratch) {
		p := partials[b*k : (b+1)*k]
		lo, hi := b*sumBlockRows, (b+1)*sumBlockRows
		if hi > n {
			hi = n
		}
		for r := lo; r < hi; r++ {
			off := r * k
			for c := 0; c < k; c++ {
				p[c] += flat[off+c]
			}
		}
	})
	for b := 0; b < nb; b++ {
		off := b * k
		for c := 0; c < k; c++ {
			dst[c] += partials[off+c]
		}
	}
}

// ReduceSum evaluates fn over the fixed 256-wide blocks of [0, n) in
// parallel and returns the sum of the block results, combined in block
// order. fn(lo, hi) must return the partial for [lo, hi) computed
// serially; under that contract the total is bit-identical for every worker
// count. This is the scalar counterpart of SumVectors, used by the
// parallelized objective evaluation of the convergence check.
func ReduceSum(n, workers int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	nb := (n + sumBlockRows - 1) / sumBlockRows
	partials := make([]float64, nb)
	For(nb, workers, func(b int, _ *Scratch) {
		lo, hi := b*sumBlockRows, (b+1)*sumBlockRows
		if hi > n {
			hi = n
		}
		partials[b] = fn(lo, hi)
	})
	var total float64
	for _, p := range partials {
		total += p
	}
	return total
}
