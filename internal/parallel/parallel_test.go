package parallel

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		for _, n := range []int{0, 1, 2, 10, 100, 1000} {
			var hits = make([]atomic.Int32, max(n, 1))
			For(n, workers, func(i int, _ *Scratch) {
				hits[i].Add(1)
			})
			for i := 0; i < n; i++ {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForResultsIndependentOfWorkers(t *testing.T) {
	n := 500
	serial := make([]float64, n)
	For(n, 1, func(i int, s *Scratch) {
		buf := s.Float64s(4)
		buf[0] = float64(i)
		serial[i] = buf[0] * 2
	})
	par := make([]float64, n)
	For(n, 8, func(i int, s *Scratch) {
		buf := s.Float64s(4)
		buf[0] = float64(i)
		par[i] = buf[0] * 2
	})
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("index %d: serial %v != parallel %v", i, serial[i], par[i])
		}
	}
}

func TestScratchZeroed(t *testing.T) {
	s := &Scratch{}
	b := s.Float64s(3)
	b[0], b[1], b[2] = 1, 2, 3
	b2 := s.Float64s(2)
	if b2[0] != 0 || b2[1] != 0 {
		t.Fatal("Scratch.Float64s did not zero reused memory")
	}
	b3 := s.Float64s(10)
	for _, v := range b3 {
		if v != 0 {
			t.Fatal("grown scratch not zeroed")
		}
	}
}

func TestSumVectorsMatchesSerial(t *testing.T) {
	f := func(seed int64, kRaw, nRaw uint8) bool {
		k := int(kRaw%8) + 1
		n := int(nRaw%40) + 1
		flat := make([]float64, n*k)
		x := float64(seed%1000) / 7
		for i := range flat {
			x = math.Mod(x*1.37+0.11, 10)
			flat[i] = x
		}
		want := make([]float64, k)
		SumVectors(want, flat, k, 1)
		for _, workers := range []int{2, 3, 5} {
			got := make([]float64, k)
			SumVectors(got, flat, k, workers)
			for c := range got {
				// Parallel partials re-associate the additions, so agreement
				// is up to floating-point rounding, not bit-exact.
				if math.Abs(got[c]-want[c]) > 1e-9*(1+math.Abs(want[c])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSumVectorsEmpty(t *testing.T) {
	dst := []float64{5, 5}
	SumVectors(dst, nil, 2, 4)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatal("SumVectors on empty input should zero dst")
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkForSerial(b *testing.B) {
	work := func(i int, s *Scratch) {
		buf := s.Float64s(64)
		for j := range buf {
			buf[j] = float64(i + j)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		For(10000, 1, work)
	}
}

func BenchmarkForParallel(b *testing.B) {
	work := func(i int, s *Scratch) {
		buf := s.Float64s(64)
		for j := range buf {
			buf[j] = float64(i + j)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		For(10000, DefaultWorkers(), work)
	}
}
