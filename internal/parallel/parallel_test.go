package parallel

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		for _, n := range []int{0, 1, 2, 10, 100, 1000} {
			var hits = make([]atomic.Int32, max(n, 1))
			For(n, workers, func(i int, _ *Scratch) {
				hits[i].Add(1)
			})
			for i := 0; i < n; i++ {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForResultsIndependentOfWorkers(t *testing.T) {
	n := 500
	serial := make([]float64, n)
	For(n, 1, func(i int, s *Scratch) {
		buf := s.Float64s(4)
		buf[0] = float64(i)
		serial[i] = buf[0] * 2
	})
	par := make([]float64, n)
	For(n, 8, func(i int, s *Scratch) {
		buf := s.Float64s(4)
		buf[0] = float64(i)
		par[i] = buf[0] * 2
	})
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("index %d: serial %v != parallel %v", i, serial[i], par[i])
		}
	}
}

func TestScratchZeroed(t *testing.T) {
	s := &Scratch{}
	b := s.Float64s(3)
	b[0], b[1], b[2] = 1, 2, 3
	b2 := s.Float64s(2)
	if b2[0] != 0 || b2[1] != 0 {
		t.Fatal("Scratch.Float64s did not zero reused memory")
	}
	b3 := s.Float64s(10)
	for _, v := range b3 {
		if v != 0 {
			t.Fatal("grown scratch not zeroed")
		}
	}
}

func TestSumVectorsBitIdenticalAcrossWorkers(t *testing.T) {
	f := func(seed int64, kRaw uint8, nRaw uint16) bool {
		k := int(kRaw%8) + 1
		// Span several 256-row blocks so the partial-combine path is hit.
		n := int(nRaw%1500) + 1
		flat := make([]float64, n*k)
		x := float64(seed%1000) / 7
		for i := range flat {
			x = math.Mod(x*1.37+0.11, 10)
			flat[i] = x
		}
		want := make([]float64, k)
		SumVectors(want, flat, k, 1)
		for _, workers := range []int{2, 3, 5, 8} {
			got := make([]float64, k)
			SumVectors(got, flat, k, workers)
			for c := range got {
				// The fixed-block reduction makes every worker count follow
				// the same summation tree — agreement is bit-exact.
				if got[c] != want[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSumVectorsMatchesNaive(t *testing.T) {
	k, n := 3, 700
	flat := make([]float64, n*k)
	for i := range flat {
		flat[i] = float64(i%13) * 0.25
	}
	naive := make([]float64, k)
	for r := 0; r < n; r++ {
		for c := 0; c < k; c++ {
			naive[c] += flat[r*k+c]
		}
	}
	got := make([]float64, k)
	SumVectors(got, flat, k, 4)
	for c := range got {
		if math.Abs(got[c]-naive[c]) > 1e-9*(1+math.Abs(naive[c])) {
			t.Fatalf("coord %d: SumVectors %v, naive %v", c, got[c], naive[c])
		}
	}
}

func TestReduceSumBitIdenticalAcrossWorkers(t *testing.T) {
	vals := make([]float64, 3000)
	x := 0.3
	for i := range vals {
		x = math.Mod(x*1.7+0.19, 4)
		vals[i] = x - 2
	}
	fn := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += vals[i] * vals[i]
		}
		return s
	}
	want := ReduceSum(len(vals), 1, fn)
	for _, workers := range []int{2, 4, 7} {
		if got := ReduceSum(len(vals), workers, fn); got != want {
			t.Fatalf("workers=%d: ReduceSum %v != serial %v", workers, got, want)
		}
	}
	naive := 0.0
	for b := 0; b < len(vals); b += 256 {
		hi := b + 256
		if hi > len(vals) {
			hi = len(vals)
		}
		naive += fn(b, hi)
	}
	if want != naive {
		t.Fatalf("ReduceSum %v != block-order naive %v", want, naive)
	}
	if got := ReduceSum(0, 4, fn); got != 0 {
		t.Fatalf("ReduceSum over empty range = %v", got)
	}
}

func TestScratchRawVariants(t *testing.T) {
	s := &Scratch{}
	f := s.Float64s(4)
	f[0], f[3] = 7, 9
	// Raw borrows reuse the arena without zeroing: same backing memory,
	// previous contents visible.
	fr := s.Float64sRaw(4)
	if fr[0] != 7 || fr[3] != 9 {
		t.Fatal("Float64sRaw did not reuse the arena")
	}
	ir := s.IntsRaw(5)
	for i := range ir {
		ir[i] = i + 1
	}
	if got := s.IntsRaw(3); got[0] != 1 || got[2] != 3 {
		t.Fatal("IntsRaw did not reuse the arena")
	}
	if got := s.Ints(5); got[4] != 0 {
		t.Fatal("Ints after IntsRaw not zeroed")
	}
}

func TestScratchInts(t *testing.T) {
	s := &Scratch{}
	b := s.Ints(3)
	b[0], b[1], b[2] = 1, 2, 3
	b2 := s.Ints(2)
	if b2[0] != 0 || b2[1] != 0 {
		t.Fatal("Scratch.Ints did not zero reused memory")
	}
	b3 := s.Ints(8)
	for _, v := range b3 {
		if v != 0 {
			t.Fatal("grown int scratch not zeroed")
		}
	}
	// The int and float arenas are independent.
	f := s.Float64s(4)
	f[0] = 9
	if got := s.Ints(8); got[0] != 0 {
		t.Fatal("Float64s clobbered the int arena")
	}
}

func TestSumVectorsEmpty(t *testing.T) {
	dst := []float64{5, 5}
	SumVectors(dst, nil, 2, 4)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatal("SumVectors on empty input should zero dst")
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkForSerial(b *testing.B) {
	work := func(i int, s *Scratch) {
		buf := s.Float64s(64)
		for j := range buf {
			buf[j] = float64(i + j)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		For(10000, 1, work)
	}
}

func BenchmarkForParallel(b *testing.B) {
	work := func(i int, s *Scratch) {
		buf := s.Float64s(64)
		for j := range buf {
			buf[j] = float64(i + j)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		For(10000, DefaultWorkers(), work)
	}
}
