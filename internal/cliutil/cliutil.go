// Package cliutil holds the flag-parsing helpers shared by the command-line
// tools: dataset resolution from -data/-preset flags and list parsing.
package cliutil

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/sparse"
)

// Presets lists the accepted -preset names.
var Presets = []string{"movielens", "citeulike", "b2b", "netflix", "genes", "small"}

// LoadData resolves the -data/-preset flag pair into a dataset. Exactly one
// of path and preset must be non-empty. Files ending in .mtx are parsed as
// MatrixMarket; everything else as separated ratings lines.
func LoadData(path, sep string, threshold float64, preset string, seed uint64) (*dataset.Dataset, error) {
	switch {
	case path != "" && preset != "":
		return nil, fmt.Errorf("-data and -preset are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(path, ".mtx") {
			m, err := sparse.ReadMatrixMarket(f)
			if err != nil {
				return nil, err
			}
			return &dataset.Dataset{Name: path, R: m}, nil
		}
		return dataset.LoadRatings(f, path, dataset.LoadOptions{Sep: sep, Threshold: threshold})
	case preset != "":
		return LoadPreset(preset, seed)
	default:
		return nil, fmt.Errorf("pass -data FILE or -preset NAME (one of %s)", strings.Join(Presets, ", "))
	}
}

// LoadPreset resolves a synthetic preset by name.
func LoadPreset(preset string, seed uint64) (*dataset.Dataset, error) {
	switch preset {
	case "movielens":
		return dataset.SyntheticMovieLens(seed).Dataset, nil
	case "citeulike":
		return dataset.SyntheticCiteULike(seed).Dataset, nil
	case "b2b":
		return dataset.SyntheticB2B(seed).Dataset, nil
	case "netflix":
		return dataset.SyntheticNetflix(seed, 0.25).Dataset, nil
	case "genes":
		return dataset.SyntheticGeneExpression(seed).Dataset, nil
	case "small":
		return dataset.SyntheticSmall(seed).Dataset, nil
	default:
		return nil, fmt.Errorf("unknown preset %q (want one of %s)", preset, strings.Join(Presets, ", "))
	}
}

// ParseInts parses a comma-separated integer list.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseFloats parses a comma-separated float list.
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
