package cliutil

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sparse"
)

func TestLoadPresetAll(t *testing.T) {
	for _, name := range Presets {
		if name == "netflix" || name == "movielens" || name == "citeulike" || name == "b2b" || name == "genes" {
			continue // large presets are covered by the dataset package tests
		}
		d, err := LoadPreset(name, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if d.R.NNZ() == 0 {
			t.Errorf("%s: empty dataset", name)
		}
	}
	if _, err := LoadPreset("nope", 1); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestLoadDataMutuallyExclusive(t *testing.T) {
	if _, err := LoadData("f", ",", 0, "small", 1); err == nil {
		t.Error("-data with -preset accepted")
	}
	if _, err := LoadData("", ",", 0, "", 1); err == nil {
		t.Error("neither flag accepted")
	}
	if _, err := LoadData("/does/not/exist", ",", 0, "", 1); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadDataCSV(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "r.csv")
	if err := os.WriteFile(p, []byte("a,x\nb,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadData(p, ",", 0, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Users() != 2 || d.Items() != 2 {
		t.Fatalf("shape %dx%d", d.Users(), d.Items())
	}
}

func TestLoadDataMatrixMarket(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "m.mtx")
	m := sparse.FromDense([][]bool{{true, false}, {true, true}})
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.WriteMatrixMarket(f, m); err != nil {
		t.Fatal(err)
	}
	f.Close()
	d, err := LoadData(p, ",", 0, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !d.R.Equal(m) {
		t.Fatal("MatrixMarket file round trip through LoadData failed")
	}
}

func TestParseLists(t *testing.T) {
	ints, err := ParseInts(" 1, 2 ,3")
	if err != nil || len(ints) != 3 || ints[2] != 3 {
		t.Fatalf("ParseInts = %v, %v", ints, err)
	}
	if _, err := ParseInts("1,x"); err == nil {
		t.Error("bad int accepted")
	}
	fs, err := ParseFloats("0.5,2")
	if err != nil || len(fs) != 2 || fs[0] != 0.5 {
		t.Fatalf("ParseFloats = %v, %v", fs, err)
	}
	if _, err := ParseFloats("1,,2"); err == nil {
		t.Error("empty float accepted")
	}
}
