// Package cv implements the hyper-parameter selection protocol of the
// paper: grid search over the number of co-clusters K and the
// regularization weight λ, scored by held-out recommendation performance
// (Section IV-B "Choice of K and λ"; Figs 6 and 9).
//
// Grid cells are independent, so the search fans out over a worker pool —
// the same scheduling structure as the paper's Spark-over-8-GPUs grid
// search, with goroutines standing in for cluster workers (DESIGN.md §4).
package cv

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/sparse"
)

// Grid is the (K, λ) search space.
type Grid struct {
	Ks      []int
	Lambdas []float64
}

// Cells returns the size of the grid.
func (g Grid) Cells() int { return len(g.Ks) * len(g.Lambdas) }

// Cell is one evaluated grid point.
type Cell struct {
	K       int
	Lambda  float64
	Metrics eval.Metrics
	// Err records a training failure; Metrics is zero in that case.
	Err error
}

// Result is a completed grid search.
type Result struct {
	// Cells holds every grid point, ordered K-major then λ (row-major over
	// Grid.Ks × Grid.Lambdas).
	Cells []Cell
	// Best is the cell maximizing the selection criterion; ties break
	// toward smaller K then smaller λ (cheaper, more regularized models).
	Best Cell
}

// Options tunes the search.
type Options struct {
	// M is the recommendation cutoff for the selection metric. Default 50,
	// as in the paper's recall@50 heatmap.
	M int
	// Base supplies every core.Config field except K and Lambda, which the
	// grid overrides (solver budget, seed, Relative, Workers).
	Base core.Config
	// Criterion maps metrics to the scalar being maximized. Default
	// recall@M, the paper's choice.
	Criterion func(eval.Metrics) float64
	// Workers is the number of concurrent grid cells. Default 1. Note that
	// per-cell training is itself parallel when Base.Workers > 1.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.M == 0 {
		o.M = 50
	}
	if o.Criterion == nil {
		o.Criterion = func(m eval.Metrics) float64 { return m.RecallAtM }
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// Search trains one OCuLaR model per grid cell on train and evaluates it on
// test. It returns an error only for an invalid grid; per-cell training
// errors are recorded in the cells.
func Search(train, test *sparse.Matrix, grid Grid, opts Options) (*Result, error) {
	if len(grid.Ks) == 0 || len(grid.Lambdas) == 0 {
		return nil, fmt.Errorf("cv: empty grid")
	}
	for _, k := range grid.Ks {
		if k < 1 {
			return nil, fmt.Errorf("cv: invalid K=%d in grid", k)
		}
	}
	for _, l := range grid.Lambdas {
		if l < 0 {
			return nil, fmt.Errorf("cv: invalid lambda=%v in grid", l)
		}
	}
	opts = opts.withDefaults()

	cells := make([]Cell, grid.Cells())
	idx := 0
	for _, k := range grid.Ks {
		for _, l := range grid.Lambdas {
			cells[idx] = Cell{K: k, Lambda: l}
			idx++
		}
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Workers)
	for n := range cells {
		wg.Add(1)
		sem <- struct{}{}
		go func(c *Cell) {
			defer wg.Done()
			defer func() { <-sem }()
			cfg := opts.Base
			cfg.K = c.K
			cfg.Lambda = c.Lambda
			res, err := core.Train(train, cfg)
			if err != nil {
				c.Err = err
				return
			}
			c.Metrics = eval.Evaluate(res.Model, train, test, opts.M)
		}(&cells[n])
	}
	wg.Wait()

	r := &Result{Cells: cells}
	r.Best = pickBest(cells, opts.Criterion)
	return r, nil
}

func pickBest(cells []Cell, criterion func(eval.Metrics) float64) Cell {
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := cells[order[a]], cells[order[b]]
		if (ca.Err == nil) != (cb.Err == nil) {
			return ca.Err == nil
		}
		sa, sb := criterion(ca.Metrics), criterion(cb.Metrics)
		if sa != sb {
			return sa > sb
		}
		if ca.K != cb.K {
			return ca.K < cb.K
		}
		return ca.Lambda < cb.Lambda
	})
	return cells[order[0]]
}

// Heatmap formats the grid as rows of λ by columns of K with the criterion
// value per cell — the textual analogue of the Fig 9 heatmap. Cells with
// errors print as "err".
func (r *Result) Heatmap(criterion func(eval.Metrics) float64) string {
	if criterion == nil {
		criterion = func(m eval.Metrics) float64 { return m.RecallAtM }
	}
	// Recover the axes from the cells.
	kSet, lSet := map[int]bool{}, map[float64]bool{}
	for _, c := range r.Cells {
		kSet[c.K] = true
		lSet[c.Lambda] = true
	}
	ks := make([]int, 0, len(kSet))
	for k := range kSet {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	ls := make([]float64, 0, len(lSet))
	for l := range lSet {
		ls = append(ls, l)
	}
	sort.Float64s(ls)

	lookup := make(map[[2]float64]Cell, len(r.Cells))
	for _, c := range r.Cells {
		lookup[[2]float64{float64(c.K), c.Lambda}] = c
	}
	var b []byte
	b = append(b, fmt.Sprintf("%10s", "lambda\\K")...)
	for _, k := range ks {
		b = append(b, fmt.Sprintf("%8d", k)...)
	}
	b = append(b, '\n')
	for _, l := range ls {
		b = append(b, fmt.Sprintf("%10.4g", l)...)
		for _, k := range ks {
			c, ok := lookup[[2]float64{float64(k), l}]
			switch {
			case !ok:
				b = append(b, fmt.Sprintf("%8s", "-")...)
			case c.Err != nil:
				b = append(b, fmt.Sprintf("%8s", "err")...)
			default:
				b = append(b, fmt.Sprintf("%8.4f", criterion(c.Metrics))...)
			}
		}
		b = append(b, '\n')
	}
	return string(b)
}
