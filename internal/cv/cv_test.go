package cv

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/rng"
)

func TestSearchValidation(t *testing.T) {
	d := dataset.SyntheticSmall(1)
	sp := dataset.SplitEntries(d.R, 0.75, rng.New(1))
	if _, err := Search(sp.Train, sp.Test, Grid{}, Options{}); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := Search(sp.Train, sp.Test, Grid{Ks: []int{0}, Lambdas: []float64{1}}, Options{}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Search(sp.Train, sp.Test, Grid{Ks: []int{2}, Lambdas: []float64{-1}}, Options{}); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestSearchEvaluatesAllCells(t *testing.T) {
	d := dataset.SyntheticSmall(2)
	sp := dataset.SplitEntries(d.R, 0.75, rng.New(2))
	grid := Grid{Ks: []int{2, 4}, Lambdas: []float64{0.5, 2, 8}}
	res, err := Search(sp.Train, sp.Test, grid, Options{
		M:    10,
		Base: core.Config{MaxIter: 5, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Err != nil {
			t.Fatalf("cell (%d,%v) failed: %v", c.K, c.Lambda, c.Err)
		}
		if c.Metrics.Users == 0 {
			t.Fatalf("cell (%d,%v) evaluated no users", c.K, c.Lambda)
		}
	}
}

func TestSearchBestIsMax(t *testing.T) {
	d := dataset.SyntheticSmall(3)
	sp := dataset.SplitEntries(d.R, 0.75, rng.New(3))
	grid := Grid{Ks: []int{2, 6}, Lambdas: []float64{1, 4}}
	res, err := Search(sp.Train, sp.Test, grid, Options{
		M:    10,
		Base: core.Config{MaxIter: 8, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Metrics.RecallAtM > res.Best.Metrics.RecallAtM {
			t.Fatalf("cell (%d,%v)=%v beats Best (%d,%v)=%v",
				c.K, c.Lambda, c.Metrics.RecallAtM,
				res.Best.K, res.Best.Lambda, res.Best.Metrics.RecallAtM)
		}
	}
}

func TestSearchParallelMatchesSerial(t *testing.T) {
	d := dataset.SyntheticSmall(4)
	sp := dataset.SplitEntries(d.R, 0.75, rng.New(4))
	grid := Grid{Ks: []int{2, 3}, Lambdas: []float64{1, 2}}
	opts := Options{M: 10, Base: core.Config{MaxIter: 4, Seed: 5}}
	serial, err := Search(sp.Train, sp.Test, grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	par, err := Search(sp.Train, sp.Test, grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Cells {
		if serial.Cells[i].Metrics != par.Cells[i].Metrics {
			t.Fatalf("cell %d differs between serial and parallel search", i)
		}
	}
	if serial.Best.K != par.Best.K || serial.Best.Lambda != par.Best.Lambda {
		t.Fatal("best cell differs")
	}
}

func TestSearchCustomCriterion(t *testing.T) {
	d := dataset.SyntheticSmall(5)
	sp := dataset.SplitEntries(d.R, 0.75, rng.New(5))
	grid := Grid{Ks: []int{2, 4}, Lambdas: []float64{1}}
	res, err := Search(sp.Train, sp.Test, grid, Options{
		M:         10,
		Base:      core.Config{MaxIter: 5, Seed: 1},
		Criterion: func(m eval.Metrics) float64 { return m.MAPAtM },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Metrics.MAPAtM > res.Best.Metrics.MAPAtM {
			t.Fatal("best does not maximize the custom criterion")
		}
	}
}

func TestHeatmapFormat(t *testing.T) {
	d := dataset.SyntheticSmall(6)
	sp := dataset.SplitEntries(d.R, 0.75, rng.New(6))
	grid := Grid{Ks: []int{2, 3}, Lambdas: []float64{0.5, 1}}
	res, err := Search(sp.Train, sp.Test, grid, Options{M: 10, Base: core.Config{MaxIter: 3, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	hm := res.Heatmap(nil)
	lines := strings.Split(strings.TrimRight(hm, "\n"), "\n")
	if len(lines) != 3 { // header + 2 lambda rows
		t.Fatalf("heatmap has %d lines:\n%s", len(lines), hm)
	}
	if !strings.Contains(lines[0], "2") || !strings.Contains(lines[0], "3") {
		t.Errorf("header missing K values: %q", lines[0])
	}
	if !strings.HasPrefix(strings.TrimSpace(lines[1]), "0.5") {
		t.Errorf("first row should be lambda=0.5: %q", lines[1])
	}
}

func TestGridCells(t *testing.T) {
	g := Grid{Ks: []int{1, 2, 3}, Lambdas: []float64{0, 1}}
	if g.Cells() != 6 {
		t.Fatalf("Cells() = %d", g.Cells())
	}
}
