package cv

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sparse"
)

func TestFoldsPartition(t *testing.T) {
	d := dataset.SyntheticSmall(60)
	const k = 4
	splits, err := Folds(d.R, k, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != k {
		t.Fatalf("got %d folds", len(splits))
	}
	// Test folds are disjoint and cover all positives exactly once.
	b := sparse.NewBuilder(d.R.Rows(), d.R.Cols())
	totalTest := 0
	for fi, sp := range splits {
		totalTest += sp.Test.NNZ()
		if sp.Train.NNZ()+sp.Test.NNZ() != d.R.NNZ() {
			t.Fatalf("fold %d: train+test != all", fi)
		}
		sp.Test.Each(func(u, i int) {
			if sp.Train.Has(u, i) {
				t.Fatalf("fold %d: entry in both halves", fi)
			}
			b.Add(u, i)
		})
	}
	if totalTest != d.R.NNZ() {
		t.Fatalf("test folds total %d, want %d", totalTest, d.R.NNZ())
	}
	if !b.Build().Equal(d.R) {
		t.Fatal("union of test folds != original (overlap or loss)")
	}
}

func TestFoldsValidation(t *testing.T) {
	d := dataset.SyntheticSmall(61)
	if _, err := Folds(d.R, 1, 1); err == nil {
		t.Error("1 fold accepted")
	}
	tiny := sparse.FromDense([][]bool{{true}})
	if _, err := Folds(tiny, 3, 1); err == nil {
		t.Error("more folds than positives accepted")
	}
}

func TestSearchKFold(t *testing.T) {
	d := dataset.SyntheticSmall(62)
	grid := Grid{Ks: []int{3, 6}, Lambdas: []float64{1, 4}}
	res, err := SearchKFold(d.R, grid, 3, 5, Options{
		M:    10,
		Base: core.Config{MaxIter: 8, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Err != nil {
			t.Fatalf("cell (%d,%v): %v", c.K, c.Lambda, c.Err)
		}
		if c.Metrics.RecallAtM <= 0 || c.Metrics.RecallAtM > 1 {
			t.Fatalf("cell (%d,%v) recall %v out of range", c.K, c.Lambda, c.Metrics.RecallAtM)
		}
	}
	// Best maximizes the averaged criterion.
	for _, c := range res.Cells {
		if c.Metrics.RecallAtM > res.Best.Metrics.RecallAtM {
			t.Fatal("best is not the max")
		}
	}
}

func TestSearchKFoldDeterministic(t *testing.T) {
	d := dataset.SyntheticSmall(63)
	grid := Grid{Ks: []int{3}, Lambdas: []float64{1, 4}}
	opts := Options{M: 10, Base: core.Config{MaxIter: 5, Seed: 2}}
	a, err := SearchKFold(d.R, grid, 3, 7, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SearchKFold(d.R, grid, 3, 7, opts)
	for i := range a.Cells {
		if a.Cells[i].Metrics != b.Cells[i].Metrics {
			t.Fatal("k-fold search not deterministic")
		}
	}
}
