package cv

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// Folds partitions the positives of m into k disjoint test matrices with
// matching training complements. Fold f's test holds roughly nnz/k
// positives; its train holds all others. The union of the test folds is
// exactly the positives of m.
func Folds(m *sparse.Matrix, k int, seed uint64) ([]Split2, error) {
	if k < 2 {
		return nil, fmt.Errorf("cv: need at least 2 folds, got %d", k)
	}
	if m.NNZ() < k {
		return nil, fmt.Errorf("cv: %d positives cannot fill %d folds", m.NNZ(), k)
	}
	perm := rng.New(seed).Perm(m.NNZ())
	out := make([]Split2, k)
	for f := 0; f < k; f++ {
		lo := f * m.NNZ() / k
		hi := (f + 1) * m.NNZ() / k
		test := perm[lo:hi]
		train := make([]int, 0, m.NNZ()-(hi-lo))
		train = append(train, perm[:lo]...)
		train = append(train, perm[hi:]...)
		out[f] = Split2{
			Train: m.SelectEntries(train),
			Test:  m.SelectEntries(test),
		}
	}
	return out, nil
}

// Split2 is a train/test pair (mirrors dataset.Split without the import
// cycle; both halves keep the full matrix shape).
type Split2 struct {
	Train, Test *sparse.Matrix
}

// SearchKFold runs the grid search of Section IV-B with k-fold
// cross-validation: every (K, λ) cell is trained and evaluated once per
// fold and its metrics are averaged, which is the paper's "determined from
// the data via cross-validation" protocol in full. Cell training errors
// abort the cell (recorded in Cell.Err) but not the search.
func SearchKFold(m *sparse.Matrix, grid Grid, folds int, seed uint64, opts Options) (*Result, error) {
	splits, err := Folds(m, folds, seed)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	var agg *Result
	for fi, sp := range splits {
		res, err := Search(sp.Train, sp.Test, grid, opts)
		if err != nil {
			return nil, fmt.Errorf("cv: fold %d: %w", fi, err)
		}
		if agg == nil {
			agg = res
			continue
		}
		for ci := range agg.Cells {
			a, b := &agg.Cells[ci], res.Cells[ci]
			if a.Err == nil && b.Err != nil {
				a.Err = b.Err
				continue
			}
			a.Metrics.RecallAtM += b.Metrics.RecallAtM
			a.Metrics.MAPAtM += b.Metrics.MAPAtM
			a.Metrics.PrecisionAtM += b.Metrics.PrecisionAtM
			a.Metrics.Users += b.Metrics.Users
		}
	}
	inv := 1 / float64(folds)
	for ci := range agg.Cells {
		c := &agg.Cells[ci]
		c.Metrics.RecallAtM *= inv
		c.Metrics.MAPAtM *= inv
		c.Metrics.PrecisionAtM *= inv
	}
	agg.Best = pickBest(agg.Cells, opts.Criterion)
	return agg, nil
}
