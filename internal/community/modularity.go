// Package community implements the two community-detection baselines of
// Figure 2: non-overlapping modularity maximization (Newman 2006, fitted
// greedily in the style of Clauset-Newman-Moore) and the overlapping
// BIGCLAM cluster-affiliation model (Yang & Leskovec, WSDM 2013).
//
// The paper's point (Fig 2) is that neither recovers the planted
// overlapping co-cluster structure of the introductory example: modularity
// cannot represent overlap at all, and BIGCLAM — which shares OCuLaR's
// generative model — lacks both the bipartite structure and the ℓ2
// regularization, and may therefore draw incorrect community boundaries.
// This package exists to reproduce that comparison, plus the conversion
// from communities to candidate recommendations.
package community

import (
	"sort"

	"repro/internal/graph"
)

// Partition is a non-overlapping assignment of nodes to communities.
type Partition struct {
	// Label[v] is the community id of node v, densely renumbered 0..C-1.
	Label []int
	// Count is the number of communities C.
	Count int
}

// Communities returns the partition as per-community sorted node lists.
func (p *Partition) Communities() [][]int {
	out := make([][]int, p.Count)
	for v, c := range p.Label {
		out[c] = append(out[c], v)
	}
	return out
}

// Modularity computes Newman's modularity Q = Σ_c (l_c/m − (d_c/2m)²) of a
// partition of g, where l_c counts intra-community edges and d_c sums
// member degrees. Q is 0 for an empty graph.
func Modularity(g *graph.Graph, label []int) float64 {
	m := float64(g.M())
	if m == 0 {
		return 0
	}
	maxLabel := 0
	for _, c := range label {
		if c > maxLabel {
			maxLabel = c
		}
	}
	intra := make([]float64, maxLabel+1)
	deg := make([]float64, maxLabel+1)
	for v := 0; v < g.N(); v++ {
		deg[label[v]] += float64(g.Degree(v))
		for _, w := range g.Neighbors(v) {
			if int(w) > v && label[w] == label[v] {
				intra[label[v]]++
			}
		}
	}
	q := 0.0
	for c := range intra {
		q += intra[c]/m - (deg[c]/(2*m))*(deg[c]/(2*m))
	}
	return q
}

// GreedyModularity maximizes modularity by greedy agglomeration: starting
// from singleton communities, repeatedly merge the connected pair with the
// largest modularity gain until no merge improves Q. Like the Girvan-Newman
// family referenced by the paper it discovers the number of communities
// automatically, and like all modularity methods it returns a
// non-overlapping partition.
func GreedyModularity(g *graph.Graph) *Partition {
	n := g.N()
	label := make([]int, n)
	for v := range label {
		label[v] = v // singletons; an edgeless graph stays this way
	}
	if n == 0 || g.M() == 0 {
		return renumber(label)
	}
	m2 := 2 * float64(g.M())

	// Community state: total degree, and inter-community edge weights.
	deg := make([]float64, n)
	links := make([]map[int]float64, n)
	alive := make([]bool, n)
	for v := 0; v < n; v++ {
		label[v] = v
		deg[v] = float64(g.Degree(v))
		links[v] = make(map[int]float64, g.Degree(v))
		for _, w := range g.Neighbors(v) {
			links[v][int(w)]++
		}
		alive[v] = true
	}
	parent := make([]int, n)
	for v := range parent {
		parent[v] = v
	}

	for {
		// Find the best positive-gain merge among connected communities.
		bestGain := 0.0
		bestA, bestB := -1, -1
		for a := 0; a < n; a++ {
			if !alive[a] {
				continue
			}
			for b, eab := range links[a] {
				if b <= a || !alive[b] {
					continue
				}
				// ΔQ = e_ab/m − 2·(d_a/2m)·(d_b/2m), with e_ab the number
				// of edges between the communities.
				gain := eab/(m2/2) - 2*(deg[a]/m2)*(deg[b]/m2)
				if gain > bestGain+1e-15 {
					bestGain, bestA, bestB = gain, a, b
				}
			}
		}
		if bestA < 0 {
			break
		}
		// Merge bestB into bestA.
		alive[bestB] = false
		parent[bestB] = bestA
		deg[bestA] += deg[bestB]
		for c, w := range links[bestB] {
			if c == bestA {
				continue
			}
			links[bestA][c] += w
			links[c][bestA] += w
			delete(links[c], bestB)
		}
		delete(links[bestA], bestB)
		links[bestB] = nil
	}

	// Resolve each node's community root.
	var find func(int) int
	find = func(v int) int {
		if parent[v] != v {
			parent[v] = find(parent[v])
		}
		return parent[v]
	}
	for v := 0; v < n; v++ {
		label[v] = find(v)
	}
	return renumber(label)
}

// renumber maps arbitrary labels to dense 0..C-1 ids in first-seen order.
func renumber(label []int) *Partition {
	ids := make(map[int]int)
	out := make([]int, len(label))
	for v, c := range label {
		id, ok := ids[c]
		if !ok {
			id = len(ids)
			ids[c] = id
		}
		out[v] = id
	}
	return &Partition{Label: out, Count: len(ids)}
}

// BipartiteRecommendations lists the user-item pairs that a node grouping
// implies as candidate recommendations: pairs (u, i) in the same community
// with no observed positive. nodeSets holds communities over the lifted
// node ids of graph.NewBipartite (users 0..nu-1, items nu..). has reports
// observed positives. Pairs are returned sorted (user-major) and
// deduplicated across communities.
func BipartiteRecommendations(nodeSets [][]int, nu int, has func(u, i int) bool) [][2]int {
	seen := make(map[[2]int]bool)
	for _, set := range nodeSets {
		var users, items []int
		for _, v := range set {
			if v < nu {
				users = append(users, v)
			} else {
				items = append(items, v-nu)
			}
		}
		for _, u := range users {
			for _, i := range items {
				if !has(u, i) {
					seen[[2]int{u, i}] = true
				}
			}
		}
	}
	out := make([][2]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}
