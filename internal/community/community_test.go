package community

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/graph"
)

// twoCliques builds two disjoint 4-cliques joined by nothing.
func twoCliques() *graph.Graph {
	var edges [][2]int
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			edges = append(edges, [2]int{a, b})
			edges = append(edges, [2]int{a + 4, b + 4})
		}
	}
	return graph.NewFromEdges(8, edges)
}

func TestModularityKnownValues(t *testing.T) {
	g := twoCliques()
	// Perfect partition: each clique its own community. All 12 edges are
	// intra; each community holds half the degree mass.
	perfect := []int{0, 0, 0, 0, 1, 1, 1, 1}
	q := Modularity(g, perfect)
	if math.Abs(q-0.5) > 1e-12 { // 1 − 2·(1/2)² = 0.5
		t.Fatalf("modularity of perfect partition = %v, want 0.5", q)
	}
	// Everything in one community: Q = 1 − 1 = 0.
	all := make([]int, 8)
	if q := Modularity(g, all); math.Abs(q) > 1e-12 {
		t.Fatalf("single-community modularity = %v, want 0", q)
	}
	// Perfect must beat a scrambled partition.
	scrambled := []int{0, 1, 0, 1, 0, 1, 0, 1}
	if Modularity(g, scrambled) >= Modularity(g, perfect) {
		t.Fatal("scrambled partition should score below perfect")
	}
}

func TestGreedyModularityFindsCliques(t *testing.T) {
	g := twoCliques()
	p := GreedyModularity(g)
	if p.Count != 2 {
		t.Fatalf("found %d communities, want 2", p.Count)
	}
	for v := 1; v < 4; v++ {
		if p.Label[v] != p.Label[0] {
			t.Fatal("first clique split")
		}
	}
	for v := 5; v < 8; v++ {
		if p.Label[v] != p.Label[4] {
			t.Fatal("second clique split")
		}
	}
	if p.Label[0] == p.Label[4] {
		t.Fatal("cliques merged")
	}
}

func TestGreedyModularityEmptyAndSingle(t *testing.T) {
	if p := GreedyModularity(graph.NewFromEdges(0, nil)); p.Count != 0 {
		t.Fatalf("empty graph: %d communities", p.Count)
	}
	// Edgeless graph: every node is its own community.
	p := GreedyModularity(graph.NewFromEdges(3, nil))
	if p.Count != 3 {
		t.Fatalf("edgeless graph: %d communities, want 3", p.Count)
	}
}

func TestGreedyModularityImprovesOverSingletons(t *testing.T) {
	d := dataset.PaperToy()
	g := graph.NewBipartite(d.R)
	p := GreedyModularity(g)
	singletons := make([]int, g.N())
	for v := range singletons {
		singletons[v] = v
	}
	if Modularity(g, p.Label) <= Modularity(g, singletons) {
		t.Fatal("greedy result no better than singletons")
	}
	if p.Count <= 1 || p.Count >= g.N() {
		t.Fatalf("implausible community count %d", p.Count)
	}
}

func TestPartitionCommunities(t *testing.T) {
	p := &Partition{Label: []int{0, 1, 0, 2}, Count: 3}
	cs := p.Communities()
	if len(cs) != 3 || len(cs[0]) != 2 || cs[0][0] != 0 || cs[0][1] != 2 {
		t.Fatalf("Communities() = %v", cs)
	}
}

func TestBigClamSeparatesCliques(t *testing.T) {
	g := twoCliques()
	b, err := FitBigClam(g, BigClamConfig{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Within-clique edge probabilities should be high, across-clique low.
	if p := b.EdgeProb(0, 1); p < 0.5 {
		t.Errorf("within-clique prob %v too low", p)
	}
	if p := b.EdgeProb(0, 5); p > 0.3 {
		t.Errorf("across-clique prob %v too high", p)
	}
}

func TestBigClamConfigValidation(t *testing.T) {
	if _, err := FitBigClam(twoCliques(), BigClamConfig{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestBigClamDeterminism(t *testing.T) {
	g := twoCliques()
	a, _ := FitBigClam(g, BigClamConfig{K: 2, Seed: 7, MaxIter: 20})
	b, _ := FitBigClam(g, BigClamConfig{K: 2, Seed: 7, MaxIter: 20})
	for i := range a.f {
		if a.f[i] != b.f[i] {
			t.Fatal("same seed produced different factors")
		}
	}
}

func TestBigClamCommunitiesThreshold(t *testing.T) {
	g := twoCliques()
	b, _ := FitBigClam(g, BigClamConfig{K: 2, Seed: 3})
	sets := b.Communities(DefaultDelta(g))
	if len(sets) == 0 {
		t.Fatal("no communities above threshold")
	}
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	if total < 8 {
		t.Errorf("only %d memberships; every clique node should belong somewhere", total)
	}
}

func TestDefaultDelta(t *testing.T) {
	g := twoCliques()
	d := DefaultDelta(g)
	if d <= 0 || math.IsNaN(d) {
		t.Fatalf("delta = %v", d)
	}
	if DefaultDelta(graph.NewFromEdges(1, nil)) != 0 {
		t.Fatal("single-node delta should be 0")
	}
}

func TestBipartiteRecommendations(t *testing.T) {
	// Community over users {0,1} and items {0,1} (lifted ids 2,3), where
	// (0,0), (0,1), (1,0) are observed: the only candidate is (1,1).
	has := func(u, i int) bool { return !(u == 1 && i == 1) }
	recs := BipartiteRecommendations([][]int{{0, 1, 2, 3}}, 2, has)
	if len(recs) != 1 || recs[0] != [2]int{1, 1} {
		t.Fatalf("recs = %v, want [[1 1]]", recs)
	}
	// Duplicates across overlapping communities collapse.
	recs = BipartiteRecommendations([][]int{{0, 1, 2, 3}, {1, 3}}, 2, has)
	if len(recs) != 1 {
		t.Fatalf("recs = %v, want single deduplicated pair", recs)
	}
}

// TestFig2NonOverlappingMissesRecommendations reproduces the qualitative
// claim of Figure 2: a non-overlapping partition of the toy's bipartite
// graph cannot place all three withheld pairs inside communities, because
// the planted co-clusters overlap (user 6 and items 3-6 belong to several).
func TestFig2NonOverlappingMissesRecommendations(t *testing.T) {
	toy := dataset.PaperToy()
	g := graph.NewBipartite(toy.R)
	p := GreedyModularity(g)
	recs := BipartiteRecommendations(p.Communities(), toy.Users(), toy.R.Has)
	found := 0
	for _, h := range toy.Held {
		for _, rec := range recs {
			if rec == h {
				found++
				break
			}
		}
	}
	if found >= 3 {
		t.Fatalf("non-overlapping modularity found all %d held pairs; the toy no longer demonstrates the paper's point", found)
	}
	t.Logf("modularity recovered %d of 3 held recommendations across %d communities", found, p.Count)
}

func BenchmarkGreedyModularityToy(b *testing.B) {
	toy := dataset.PaperToy()
	g := graph.NewBipartite(toy.R)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyModularity(g)
	}
}

func BenchmarkBigClamToy(b *testing.B) {
	toy := dataset.PaperToy()
	g := graph.NewBipartite(toy.R)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitBigClam(g, BigClamConfig{K: 3, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
