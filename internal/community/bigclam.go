package community

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/rng"
)

// BigClamConfig parameterizes the BIGCLAM fit. BIGCLAM shares OCuLaR's
// generative model P[edge] = 1 − exp(−⟨F_u, F_v⟩) but differs in exactly
// the ways Section II highlights: it runs on the unipartite graph (it would
// happily model user-user edges), and it uses no ℓ2 regularization.
type BigClamConfig struct {
	// K is the number of communities. Required, >= 1.
	K int
	// MaxIter bounds the outer iterations. Default 100.
	MaxIter int
	// Tol declares convergence when the log-likelihood improves by less
	// than Tol·|L|. Default 1e-4.
	Tol float64
	// Seed seeds factor initialization.
	Seed uint64
}

func (c BigClamConfig) withDefaults() BigClamConfig {
	if c.MaxIter == 0 {
		c.MaxIter = 100
	}
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
	return c
}

// BigClam holds fitted node-community affiliations.
type BigClam struct {
	k int
	f []float64 // node affiliations, flat, stride k
	g *graph.Graph
}

// Factor returns node v's affiliation vector (aliases model storage).
func (b *BigClam) Factor(v int) []float64 { return b.f[v*b.k : (v+1)*b.k] }

// K returns the number of communities.
func (b *BigClam) K() int { return b.k }

// EdgeProb returns the modeled edge probability between nodes u and v.
func (b *BigClam) EdgeProb(u, v int) float64 {
	return 1 - math.Exp(-linalg.Dot(b.Factor(u), b.Factor(v)))
}

// Communities thresholds the affiliations at delta and returns the node
// sets with at least one member. Yang & Leskovec use
// delta = sqrt(−log(1−ε)) with ε the background edge density; pass
// DefaultDelta for that choice.
func (b *BigClam) Communities(delta float64) [][]int {
	var out [][]int
	for c := 0; c < b.k; c++ {
		var set []int
		for v := 0; v < len(b.f)/b.k; v++ {
			if b.f[v*b.k+c] >= delta {
				set = append(set, v)
			}
		}
		if len(set) > 0 {
			out = append(out, set)
		}
	}
	return out
}

// DefaultDelta returns the membership threshold √(−log(1−ε)) with ε set to
// the graph's edge density, the rule from the BIGCLAM paper.
func DefaultDelta(g *graph.Graph) float64 {
	n := float64(g.N())
	if n < 2 {
		return 0
	}
	eps := 2 * float64(g.M()) / (n * (n - 1))
	if eps >= 1 {
		eps = 1 - 1e-9
	}
	return math.Sqrt(-math.Log(1 - eps))
}

// FitBigClam fits the cluster-affiliation model to g by projected gradient
// ascent on the log-likelihood, one node at a time, with the same sum trick
// as OCuLaR (which the OCuLaR paper credits to BIGCLAM).
func FitBigClam(g *graph.Graph, cfg BigClamConfig) (*BigClam, error) {
	cfg = cfg.withDefaults()
	if cfg.K < 1 {
		return nil, fmt.Errorf("community: K must be >= 1, got %d", cfg.K)
	}
	n := g.N()
	b := &BigClam{k: cfg.K, f: make([]float64, n*cfg.K), g: g}
	rnd := rng.New(cfg.Seed)
	scale := math.Sqrt(1 / float64(cfg.K))
	for i := range b.f {
		b.f[i] = rnd.Float64() * scale
	}
	sum := make([]float64, cfg.K)
	grad := make([]float64, cfg.K)
	cand := make([]float64, cfg.K)
	ll := b.logLikelihood(sum)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// Precompute ΣF once per sweep; maintain it incrementally as nodes
		// update so later nodes see fresh sums (Gauss-Seidel style, as in
		// the reference implementation).
		sumAll(sum, b.f, cfg.K)
		for v := 0; v < n; v++ {
			fv := b.Factor(v)
			b.nodeGradient(grad, sum, v)
			// Backtracking line search on the per-node likelihood.
			alpha := 1.0
			lOld := b.nodeLikelihood(sum, v, fv)
			improved := false
			for bt := 0; bt < 20; bt++ {
				for c := 0; c < cfg.K; c++ {
					w := fv[c] + alpha*grad[c]
					if w < 0 {
						w = 0
					}
					cand[c] = w
				}
				if b.nodeLikelihood(sum, v, cand) > lOld {
					improved = true
					break
				}
				alpha *= 0.5
			}
			if improved {
				for c := 0; c < cfg.K; c++ {
					sum[c] += cand[c] - fv[c]
				}
				copy(fv, cand)
			}
		}
		llNew := b.logLikelihood(sum)
		if llNew-ll <= cfg.Tol*math.Abs(ll) {
			break
		}
		ll = llNew
	}
	return b, nil
}

// nodeGradient computes ∂L/∂F_v =
// Σ_{u∈N(v)} F_u·e^{−d}/(1−e^{−d}) − (ΣF − F_v − Σ_{u∈N(v)} F_u).
func (b *BigClam) nodeGradient(grad, sum []float64, v int) {
	k := b.k
	fv := b.Factor(v)
	for c := 0; c < k; c++ {
		grad[c] = -(sum[c] - fv[c])
	}
	for _, u := range b.g.Neighbors(v) {
		fu := b.Factor(int(u))
		d := linalg.Dot(fv, fu)
		if d < 1e-10 {
			d = 1e-10
		}
		e := math.Exp(-d)
		coef := 1 + e/(1-e) // +1 restores the non-neighbor subtraction
		for c := 0; c < k; c++ {
			grad[c] += coef * fu[c]
		}
	}
}

// nodeLikelihood evaluates the part of the log-likelihood depending on
// node v with candidate factor f:
// Σ_{u∈N(v)} log(1−e^{−⟨f,F_u⟩}) − ⟨f, ΣF − F_v − Σ_{u∈N(v)} F_u⟩.
// sum must be the current ΣF including v's current factor.
func (b *BigClam) nodeLikelihood(sum []float64, v int, f []float64) float64 {
	fv := b.Factor(v)
	l := 0.0
	dotSum := 0.0
	for c := 0; c < b.k; c++ {
		dotSum += f[c] * (sum[c] - fv[c])
	}
	for _, u := range b.g.Neighbors(v) {
		fu := b.Factor(int(u))
		d := linalg.Dot(f, fu)
		dotSum -= d
		if d < 1e-10 {
			d = 1e-10
		}
		l += math.Log(1 - math.Exp(-d))
	}
	return l - dotSum
}

// logLikelihood evaluates the full model log-likelihood
// Σ_{edges} log(1−e^{−d}) − Σ_{non-edges} d (each unordered pair once).
func (b *BigClam) logLikelihood(scratch []float64) float64 {
	n := b.g.N()
	sumAll(scratch, b.f, b.k)
	// Σ over all ordered pairs (u≠v) of d = ⟨ΣF,ΣF⟩ − Σ_v ⟨F_v,F_v⟩;
	// halve for unordered.
	total := linalg.Dot(scratch, scratch)
	for v := 0; v < n; v++ {
		total -= linalg.Norm2Sq(b.Factor(v))
	}
	total /= 2
	l := 0.0
	for v := 0; v < n; v++ {
		for _, u := range b.g.Neighbors(v) {
			if int(u) <= v {
				continue
			}
			d := linalg.Dot(b.Factor(v), b.Factor(int(u)))
			total -= d
			if d < 1e-10 {
				d = 1e-10
			}
			l += math.Log(1 - math.Exp(-d))
		}
	}
	return l - total
}

func sumAll(dst, flat []float64, k int) {
	for c := range dst {
		dst[c] = 0
	}
	for off := 0; off < len(flat); off += k {
		for c := 0; c < k; c++ {
			dst[c] += flat[off+c]
		}
	}
}
