package explain

// This file implements bicluster match scores in the style of Prelic et
// al. ("A systematic comparison and evaluation of biclustering methods for
// gene expression data", Bioinformatics 2006) — the paper's conclusion
// points at gene-expression co-clustering as a further application of
// OCuLaR, and these scores let the recovery experiments quantify how well
// extracted co-clusters match planted modules.

import "repro/internal/dataset"

// Module is a generic co-cluster for match scoring: a set of row entities
// (users/genes) and column entities (items/conditions). Order is
// irrelevant; duplicates are ignored.
type Module struct {
	Users []int
	Items []int
}

// ModuleOf converts an extracted CoCluster to a Module.
func ModuleOf(c CoCluster) Module { return Module{Users: c.Users, Items: c.Items} }

// ModuleOfPlanted converts a planted ground-truth cluster to a Module.
func ModuleOfPlanted(c dataset.ToyCoCluster) Module { return Module{Users: c.Users, Items: c.Items} }

// Jaccard returns the Jaccard similarity of two modules viewed as sets of
// (user, item) cells: |A∩B| / |A∪B|. For rectangular modules the
// intersection factorizes as |U_a∩U_b| · |I_a∩I_b|, so no cell sets are
// materialized. Two empty modules have similarity 0.
func Jaccard(a, b Module) float64 {
	ua, ia := len(dedup(a.Users)), len(dedup(a.Items))
	ub, ib := len(dedup(b.Users)), len(dedup(b.Items))
	uCap := intersectCount(a.Users, b.Users)
	iCap := intersectCount(a.Items, b.Items)
	inter := uCap * iCap
	union := ua*ia + ub*ib - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// RecoveryScore is the Prelic-style match S(planted → found) =
// avg over planted modules of the best Jaccard against any found module.
// 1 means every planted module was recovered exactly; 0 means nothing
// overlaps. An empty planted list scores 0.
func RecoveryScore(planted, found []Module) float64 {
	if len(planted) == 0 {
		return 0
	}
	total := 0.0
	for _, p := range planted {
		best := 0.0
		for _, f := range found {
			if j := Jaccard(p, f); j > best {
				best = j
			}
		}
		total += best
	}
	return total / float64(len(planted))
}

// RelevanceScore is the reverse match S(found → planted): how much of what
// was found corresponds to real planted structure. High recovery with low
// relevance means the method buries the truth under spurious clusters.
func RelevanceScore(planted, found []Module) float64 {
	return RecoveryScore(found, planted)
}

func dedup(xs []int) map[int]struct{} {
	set := make(map[int]struct{}, len(xs))
	for _, x := range xs {
		set[x] = struct{}{}
	}
	return set
}

func intersectCount(a, b []int) int {
	sa := dedup(a)
	n := 0
	for x := range dedup(b) {
		if _, ok := sa[x]; ok {
			n++
		}
	}
	return n
}
