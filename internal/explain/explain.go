// Package explain turns fitted OCuLaR factors into the interpretable
// artifacts the paper centers on (Sections IV-C and VIII): explicit
// user-item co-clusters, textual recommendation rationales of the form
// shown in Figures 3 and 10, per-co-cluster metrics (Fig 6), and an ASCII
// rendering of the probability matrix (Fig 3).
package explain

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sparse"
)

// CoCluster is one extracted user-item co-cluster: the users and items
// whose affiliation with factor dimension ID exceeds the extraction
// threshold, ordered by descending affiliation strength.
type CoCluster struct {
	// ID is the factor dimension (column of the affiliation matrices).
	ID int
	// Users and Items are the member indices, strongest affiliation first.
	Users, Items []int
	// UserWeight[n] is the affiliation strength of Users[n]; likewise for
	// ItemWeight.
	UserWeight, ItemWeight []float64
}

// Density returns the fraction of the co-cluster's user-item pairs that are
// positive in r — the co-cluster density panel of Fig 6. An empty cluster
// has density 0.
func (c *CoCluster) Density(r *sparse.Matrix) float64 {
	if len(c.Users) == 0 || len(c.Items) == 0 {
		return 0
	}
	pos := 0
	for _, u := range c.Users {
		for _, i := range c.Items {
			if r.Has(u, i) {
				pos++
			}
		}
	}
	return float64(pos) / float64(len(c.Users)*len(c.Items))
}

// ExtractCoClusters thresholds the model's affiliation vectors at
// threshold and returns all K co-clusters (possibly with empty member
// lists). Per the paper's definition, a co-cluster is "the subset of users
// and items for which [f_u]_c and [f_i]_c are large"; threshold
// operationalizes "large".
func ExtractCoClusters(m *core.Model, threshold float64) []CoCluster {
	out := make([]CoCluster, m.K())
	for c := range out {
		out[c].ID = c
	}
	for u := 0; u < m.NumUsers(); u++ {
		f := m.UserFactor(u)
		for c, v := range f {
			if v >= threshold {
				out[c].Users = append(out[c].Users, u)
				out[c].UserWeight = append(out[c].UserWeight, v)
			}
		}
	}
	for i := 0; i < m.NumItems(); i++ {
		f := m.ItemFactor(i)
		for c, v := range f {
			if v >= threshold {
				out[c].Items = append(out[c].Items, i)
				out[c].ItemWeight = append(out[c].ItemWeight, v)
			}
		}
	}
	for c := range out {
		sortByWeight(out[c].Users, out[c].UserWeight)
		sortByWeight(out[c].Items, out[c].ItemWeight)
	}
	return out
}

func sortByWeight(idx []int, w []float64) {
	order := make([]int, len(idx))
	for n := range order {
		order[n] = n
	}
	sort.SliceStable(order, func(a, b int) bool { return w[order[a]] > w[order[b]] })
	idx2 := make([]int, len(idx))
	w2 := make([]float64, len(w))
	for n, o := range order {
		idx2[n], w2[n] = idx[o], w[o]
	}
	copy(idx, idx2)
	copy(w, w2)
}

// Stats aggregates co-cluster shape metrics over non-empty co-clusters,
// reproducing the lower three panels of Fig 6.
type Stats struct {
	// NonEmpty counts co-clusters with at least one user and one item.
	NonEmpty int
	// MeanUsers and MeanItems are member counts averaged over non-empty
	// co-clusters.
	MeanUsers, MeanItems float64
	// MeanDensity is the mean co-cluster density.
	MeanDensity float64
	// MeanUserMemberships is the average number of co-clusters a user with
	// at least one membership belongs to (the overlap level).
	MeanUserMemberships float64
}

// ComputeStats evaluates Stats for clusters against the training matrix r.
func ComputeStats(clusters []CoCluster, r *sparse.Matrix) Stats {
	var s Stats
	memberships := make(map[int]int)
	for _, c := range clusters {
		for _, u := range c.Users {
			memberships[u]++
		}
		if len(c.Users) == 0 || len(c.Items) == 0 {
			continue
		}
		s.NonEmpty++
		s.MeanUsers += float64(len(c.Users))
		s.MeanItems += float64(len(c.Items))
		s.MeanDensity += c.Density(r)
	}
	if s.NonEmpty > 0 {
		s.MeanUsers /= float64(s.NonEmpty)
		s.MeanItems /= float64(s.NonEmpty)
		s.MeanDensity /= float64(s.NonEmpty)
	}
	if len(memberships) > 0 {
		total := 0
		for _, n := range memberships {
			total += n
		}
		s.MeanUserMemberships = float64(total) / float64(len(memberships))
	}
	return s
}

// Reason is one co-cluster's contribution to a recommendation: the social
// proof that similar users (who share the listed items with the target
// user) also bought the recommended item.
type Reason struct {
	// ClusterID is the co-cluster behind this reason.
	ClusterID int
	// Contribution is [f_u]_c · [f_i]_c, this co-cluster's share of the
	// affinity ⟨f_u, f_i⟩.
	Contribution float64
	// SimilarUsers are co-cluster members who bought the recommended item,
	// strongest affiliation first (capped by the MaxPeers option).
	SimilarUsers []int
	// SharedItems are co-cluster items the target user already bought,
	// strongest affiliation first (capped by MaxPeers).
	SharedItems []int
}

// Explanation is a fully-resolved recommendation rationale for one
// user-item pair.
type Explanation struct {
	User, Item  int
	Probability float64
	Reasons     []Reason
}

// Options tunes explanation construction.
type Options struct {
	// Threshold is the co-cluster membership threshold (see
	// ExtractCoClusters). Default 0.3.
	Threshold float64
	// MinContribution drops co-clusters contributing less than this to the
	// affinity. Default 0.05.
	MinContribution float64
	// MaxPeers caps the similar-user and shared-item lists. Default 5.
	MaxPeers int
}

func (o Options) withDefaults() Options {
	if o.Threshold == 0 {
		o.Threshold = 0.3
	}
	if o.MinContribution == 0 {
		o.MinContribution = 0.05
	}
	if o.MaxPeers == 0 {
		o.MaxPeers = 5
	}
	return o
}

// Explain builds the rationale for recommending item i to user u: the
// probability estimate plus, per contributing co-cluster, the similar users
// that bought i and the items u shares with the co-cluster. r is the
// training matrix the model was fitted on.
func Explain(m *core.Model, r *sparse.Matrix, u, i int, opts Options) Explanation {
	opts = opts.withDefaults()
	ex := Explanation{User: u, Item: i, Probability: m.Predict(u, i)}
	contrib := m.PairContributions(u, i)
	type cc struct {
		id int
		v  float64
	}
	var active []cc
	for c, v := range contrib {
		if v >= opts.MinContribution {
			active = append(active, cc{c, v})
		}
	}
	sort.Slice(active, func(a, b int) bool { return active[a].v > active[b].v })
	for _, a := range active {
		reason := Reason{ClusterID: a.id, Contribution: a.v}
		// Similar users: strong co-cluster members (other than u) who
		// bought item i.
		type scored struct {
			idx int
			w   float64
		}
		var peers []scored
		for _, vu := range r.Col(i) {
			v := int(vu)
			if v == u {
				continue
			}
			if w := m.UserFactor(v)[a.id]; w >= opts.Threshold {
				peers = append(peers, scored{v, w})
			}
		}
		sort.Slice(peers, func(x, y int) bool { return peers[x].w > peers[y].w })
		for n := 0; n < len(peers) && n < opts.MaxPeers; n++ {
			reason.SimilarUsers = append(reason.SimilarUsers, peers[n].idx)
		}
		// Shared items: the user's purchases that are strong in this
		// co-cluster.
		var shared []scored
		for _, ji := range r.Row(u) {
			j := int(ji)
			if j == i {
				continue
			}
			if w := m.ItemFactor(j)[a.id]; w >= opts.Threshold {
				shared = append(shared, scored{j, w})
			}
		}
		sort.Slice(shared, func(x, y int) bool { return shared[x].w > shared[y].w })
		for n := 0; n < len(shared) && n < opts.MaxPeers; n++ {
			reason.SharedItems = append(reason.SharedItems, shared[n].idx)
		}
		ex.Reasons = append(ex.Reasons, reason)
	}
	return ex
}

// Render formats the explanation in the style of the paper's worked example
// (Section IV-C) and deployment screenshot (Fig 10), using the dataset's
// display names.
func (ex Explanation) Render(d *dataset.Dataset) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s is recommended to %s with confidence %.1f%% because:\n",
		d.ItemName(ex.Item), d.UserName(ex.User), 100*ex.Probability)
	if len(ex.Reasons) == 0 {
		b.WriteString("  (no co-cluster contributes substantially; weak recommendation)\n")
		return b.String()
	}
	for n, r := range ex.Reasons {
		fmt.Fprintf(&b, "  %c. [co-cluster %d, contribution %.2f] ", 'A'+n, r.ClusterID, r.Contribution)
		if len(r.SharedItems) > 0 {
			fmt.Fprintf(&b, "%s has purchased %s. ", d.UserName(ex.User), nameList(d.ItemName, r.SharedItems))
		}
		if len(r.SimilarUsers) > 0 {
			fmt.Fprintf(&b, "Clients with similar purchase history (e.g., %s) also bought %s.",
				nameList(d.UserName, r.SimilarUsers), d.ItemName(ex.Item))
		} else {
			fmt.Fprintf(&b, "This bundle pattern suggests %s.", d.ItemName(ex.Item))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func nameList(name func(int) string, idx []int) string {
	parts := make([]string, len(idx))
	for n, v := range idx {
		parts[n] = name(v)
	}
	return strings.Join(parts, ", ")
}

// RenderProbabilityMatrix draws the fitted probability grid of Fig 3:
// positives as [##], unknowns as their predicted probability in percent.
// Intended for small matrices (the 12x12 toy); rows are users.
func RenderProbabilityMatrix(m *core.Model, r *sparse.Matrix) string {
	var b strings.Builder
	b.WriteString("      ")
	for i := 0; i < m.NumItems(); i++ {
		fmt.Fprintf(&b, "%4d", i)
	}
	b.WriteByte('\n')
	for u := 0; u < m.NumUsers(); u++ {
		fmt.Fprintf(&b, "u%-4d ", u)
		for i := 0; i < m.NumItems(); i++ {
			if r.Has(u, i) {
				b.WriteString("  ##")
			} else if p := m.Predict(u, i); p >= 0.005 {
				fmt.Fprintf(&b, " %3.0f", 100*p)
			} else {
				b.WriteString("   .")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
