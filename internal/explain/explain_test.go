package explain

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sparse"
)

func trainToy(t testing.TB) (*dataset.Toy, *core.Model) {
	t.Helper()
	toy := dataset.PaperToy()
	res, err := core.Train(toy.R, core.Config{K: 3, Lambda: 0.1, MaxIter: 300, Tol: 1e-7, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return toy, res.Model
}

func TestExtractCoClustersRecoversToy(t *testing.T) {
	toy, m := trainToy(t)
	clusters := ExtractCoClusters(m, 0.3)
	if len(clusters) != 3 {
		t.Fatalf("extracted %d clusters, want K=3", len(clusters))
	}
	// Every planted cluster must match one extracted cluster's member sets.
	for _, planted := range toy.Clusters {
		found := false
		for _, got := range clusters {
			if sameSet(got.Users, planted.Users) && sameSet(got.Items, planted.Items) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("planted cluster users=%v items=%v not recovered; got %v",
				planted.Users, planted.Items, clusters)
		}
	}
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[int]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		if !set[v] {
			return false
		}
	}
	return true
}

func TestCoClusterMembersSortedByWeight(t *testing.T) {
	_, m := trainToy(t)
	for _, c := range ExtractCoClusters(m, 0.3) {
		for n := 1; n < len(c.UserWeight); n++ {
			if c.UserWeight[n] > c.UserWeight[n-1] {
				t.Fatalf("cluster %d user weights not descending: %v", c.ID, c.UserWeight)
			}
		}
		for n := 1; n < len(c.ItemWeight); n++ {
			if c.ItemWeight[n] > c.ItemWeight[n-1] {
				t.Fatalf("cluster %d item weights not descending: %v", c.ID, c.ItemWeight)
			}
		}
	}
}

func TestDensity(t *testing.T) {
	r := sparse.FromDense([][]bool{
		{true, true},
		{true, false},
	})
	c := CoCluster{Users: []int{0, 1}, Items: []int{0, 1}}
	if d := c.Density(r); d != 0.75 {
		t.Fatalf("density = %v, want 0.75", d)
	}
	empty := CoCluster{}
	if empty.Density(r) != 0 {
		t.Fatal("empty cluster density should be 0")
	}
}

func TestComputeStats(t *testing.T) {
	r := sparse.FromDense([][]bool{
		{true, true},
		{true, true},
	})
	clusters := []CoCluster{
		{ID: 0, Users: []int{0, 1}, Items: []int{0}},
		{ID: 1, Users: []int{0}, Items: []int{0, 1}},
		{ID: 2}, // empty
	}
	s := ComputeStats(clusters, r)
	if s.NonEmpty != 2 {
		t.Fatalf("NonEmpty = %d", s.NonEmpty)
	}
	if s.MeanUsers != 1.5 || s.MeanItems != 1.5 {
		t.Fatalf("means = %v users, %v items", s.MeanUsers, s.MeanItems)
	}
	if s.MeanDensity != 1 {
		t.Fatalf("density = %v", s.MeanDensity)
	}
	// User 0 in 2 clusters, user 1 in 1 -> mean 1.5.
	if s.MeanUserMemberships != 1.5 {
		t.Fatalf("memberships = %v", s.MeanUserMemberships)
	}
}

func TestExplainWorkedExample(t *testing.T) {
	// Section IV-C: recommending item 4 to user 6 must be justified by the
	// two co-clusters user 6 belongs to, with similar users from clusters 2
	// (users 4,5) and 3 (users 7-9), and shared items from both.
	toy, m := trainToy(t)
	ex := Explain(m, toy.R, 6, 4, Options{})
	if ex.Probability < 0.6 {
		t.Fatalf("P(6,4) = %v, want high", ex.Probability)
	}
	if len(ex.Reasons) != 2 {
		t.Fatalf("got %d reasons, want 2 (user 6 is in two co-clusters): %+v", len(ex.Reasons), ex.Reasons)
	}
	// Collect all similar users and shared items across reasons.
	similar := map[int]bool{}
	shared := map[int]bool{}
	for _, r := range ex.Reasons {
		if r.Contribution <= 0 {
			t.Fatalf("non-positive contribution %v", r.Contribution)
		}
		for _, v := range r.SimilarUsers {
			if v == 6 {
				t.Fatal("user 6 listed as its own peer")
			}
			similar[v] = true
		}
		for _, j := range r.SharedItems {
			if !toy.R.Has(6, j) {
				t.Fatalf("shared item %d not actually purchased by user 6", j)
			}
			shared[j] = true
		}
	}
	if !similar[4] && !similar[5] {
		t.Errorf("expected users 4 or 5 among similar users, got %v", similar)
	}
	if !(similar[7] || similar[8] || similar[9]) {
		t.Errorf("expected users 7-9 among similar users, got %v", similar)
	}
	if len(shared) == 0 {
		t.Error("no shared items reported")
	}
}

func TestExplainSimilarUsersBoughtTheItem(t *testing.T) {
	toy, m := trainToy(t)
	for _, h := range toy.Held {
		ex := Explain(m, toy.R, h[0], h[1], Options{})
		for _, r := range ex.Reasons {
			for _, v := range r.SimilarUsers {
				if !toy.R.Has(v, h[1]) {
					t.Fatalf("similar user %d did not buy item %d", v, h[1])
				}
			}
		}
	}
}

func TestExplainWeakPair(t *testing.T) {
	toy, m := trainToy(t)
	// User 3 bought nothing; any recommendation to it is unjustified.
	ex := Explain(m, toy.R, 3, 5, Options{})
	if len(ex.Reasons) != 0 {
		t.Fatalf("expected no reasons for empty user, got %+v", ex.Reasons)
	}
	if ex.Probability > 0.2 {
		t.Fatalf("probability %v too high for empty user", ex.Probability)
	}
}

func TestRenderExplanation(t *testing.T) {
	toy, m := trainToy(t)
	ex := Explain(m, toy.R, 6, 4, Options{})
	text := ex.Render(toy.Dataset)
	for _, want := range []string{"Item 4 is recommended to User 6", "confidence", "also bought Item 4"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered text missing %q:\n%s", want, text)
		}
	}
	// Weak explanation renders the fallback line.
	weak := Explain(m, toy.R, 3, 5, Options{})
	if !strings.Contains(weak.Render(toy.Dataset), "no co-cluster contributes") {
		t.Error("weak explanation missing fallback text")
	}
}

func TestRenderWithNames(t *testing.T) {
	d := dataset.SyntheticB2B(1)
	res, err := core.Train(d.R, core.Config{K: 8, Lambda: 5, MaxIter: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Find some pair with a non-trivial probability to exercise naming.
	var ex Explanation
	found := false
	for u := 0; u < d.Users() && !found; u++ {
		for i := 0; i < d.Items(); i++ {
			if !d.R.Has(u, i) && res.Model.Predict(u, i) > 0.3 {
				ex = Explain(res.Model, d.R, u, i, Options{})
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no confident recommendation found at this training budget")
	}
	text := ex.Render(d.Dataset)
	if !strings.Contains(text, "Client ") {
		t.Errorf("expected client names in:\n%s", text)
	}
}

func TestRenderProbabilityMatrix(t *testing.T) {
	toy, m := trainToy(t)
	s := RenderProbabilityMatrix(m, toy.R)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 13 { // header + 12 users
		t.Fatalf("matrix render has %d lines, want 13:\n%s", len(lines), s)
	}
	if !strings.Contains(s, "##") {
		t.Error("positives not marked")
	}
	// The worked example's cell: P(6,4) should render as a number >= 60.
	row6 := lines[7]
	if !strings.Contains(row6, "u6") {
		t.Fatalf("row order unexpected: %q", row6)
	}
}

func BenchmarkExplain(b *testing.B) {
	toy, m := trainToy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Explain(m, toy.R, 6, 4, Options{})
	}
}

func TestRenderCoClusterMatrix(t *testing.T) {
	toy, m := trainToy(t)
	s := RenderCoClusterMatrix(m, toy.R, 0.3)
	if !strings.Contains(s, "#") {
		t.Fatal("no positives rendered")
	}
	// The three withheld in-cluster pairs must show as '+' recommendations.
	if got := strings.Count(s, "+"); got < 3 {
		t.Fatalf("rendered %d strong recommendations, want >= 3:\n%s", got, s)
	}
	// Empty users (3, 10, 11) group under the '-' label.
	if !strings.Contains(s, "u3    -") {
		t.Fatalf("unaffiliated user not grouped last:\n%s", s)
	}
}

func TestClusterGlyph(t *testing.T) {
	cases := map[int]string{-1: "-", 0: "0", 9: "9", 10: "a", 35: "z", 36: "*", 100: "*"}
	for c, want := range cases {
		if got := clusterGlyph(c); got != want {
			t.Errorf("clusterGlyph(%d) = %q, want %q", c, got, want)
		}
	}
}
