package explain

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
)

func TestJaccardIdentical(t *testing.T) {
	a := Module{Users: []int{1, 2, 3}, Items: []int{4, 5}}
	if j := Jaccard(a, a); j != 1 {
		t.Fatalf("self Jaccard = %v, want 1", j)
	}
}

func TestJaccardDisjoint(t *testing.T) {
	a := Module{Users: []int{1, 2}, Items: []int{1}}
	b := Module{Users: []int{3, 4}, Items: []int{1}}
	if j := Jaccard(a, b); j != 0 {
		t.Fatalf("disjoint Jaccard = %v, want 0", j)
	}
}

func TestJaccardHandComputed(t *testing.T) {
	// A = {1,2}x{1,2} (4 cells), B = {2,3}x{1,2} (4 cells).
	// Intersection = {2}x{1,2} = 2 cells, union = 6. J = 1/3.
	a := Module{Users: []int{1, 2}, Items: []int{1, 2}}
	b := Module{Users: []int{2, 3}, Items: []int{1, 2}}
	if j := Jaccard(a, b); math.Abs(j-1.0/3) > 1e-12 {
		t.Fatalf("Jaccard = %v, want 1/3", j)
	}
}

func TestJaccardEmptyAndDuplicates(t *testing.T) {
	if j := Jaccard(Module{}, Module{}); j != 0 {
		t.Fatalf("empty Jaccard = %v", j)
	}
	a := Module{Users: []int{1, 1, 2}, Items: []int{3, 3}}
	b := Module{Users: []int{1, 2}, Items: []int{3}}
	if j := Jaccard(a, b); j != 1 {
		t.Fatalf("duplicate-insensitive Jaccard = %v, want 1", j)
	}
}

func TestJaccardSymmetricAndBounded(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 3)
		mk := func() Module {
			m := Module{}
			for n := 0; n < 1+r.Intn(6); n++ {
				m.Users = append(m.Users, r.Intn(10))
			}
			for n := 0; n < 1+r.Intn(6); n++ {
				m.Items = append(m.Items, r.Intn(10))
			}
			return m
		}
		a, b := mk(), mk()
		j1, j2 := Jaccard(a, b), Jaccard(b, a)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryAndRelevance(t *testing.T) {
	planted := []Module{
		{Users: []int{0, 1}, Items: []int{0, 1}},
		{Users: []int{5, 6}, Items: []int{5, 6}},
	}
	// Found: first planted exactly, plus one spurious module.
	found := []Module{
		{Users: []int{0, 1}, Items: []int{0, 1}},
		{Users: []int{8, 9}, Items: []int{8, 9}},
	}
	rec := RecoveryScore(planted, found)
	if math.Abs(rec-0.5) > 1e-12 { // (1 + 0)/2
		t.Fatalf("recovery = %v, want 0.5", rec)
	}
	rel := RelevanceScore(planted, found)
	if math.Abs(rel-0.5) > 1e-12 { // (1 + 0)/2
		t.Fatalf("relevance = %v, want 0.5", rel)
	}
	if RecoveryScore(nil, found) != 0 || RecoveryScore(planted, nil) != 0 {
		t.Fatal("empty-list scores should be 0")
	}
}

func TestPerfectRecoveryOnToy(t *testing.T) {
	toy, m := trainToy(t)
	found := ExtractCoClusters(m, 0.3)
	planted := make([]Module, len(toy.Clusters))
	for n, c := range toy.Clusters {
		planted[n] = ModuleOfPlanted(c)
	}
	modules := make([]Module, len(found))
	for n, c := range found {
		modules[n] = ModuleOf(c)
	}
	if rec := RecoveryScore(planted, modules); rec < 0.999 {
		t.Fatalf("toy recovery = %v, want ~1", rec)
	}
	if rel := RelevanceScore(planted, modules); rel < 0.999 {
		t.Fatalf("toy relevance = %v, want ~1", rel)
	}
}

func TestGeneExpressionRecoveryBeatsPartitioning(t *testing.T) {
	// The future-work experiment (examples/genes) as a regression test:
	// overlapping co-clustering must recover planted transcription modules
	// far better than a non-overlapping method could even in principle.
	d := dataset.SyntheticGeneExpression(5)
	res, err := core.Train(d.R, core.Config{K: len(d.Clusters), Lambda: 3, MaxIter: 120, Tol: 1e-6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	found := ExtractCoClusters(res.Model, 0.3)
	planted := make([]Module, len(d.Clusters))
	for n, c := range d.Clusters {
		planted[n] = ModuleOfPlanted(c)
	}
	var modules []Module
	for _, c := range found {
		if len(c.Users) > 0 && len(c.Items) > 0 {
			modules = append(modules, ModuleOf(c))
		}
	}
	if rec := RecoveryScore(planted, modules); rec < 0.5 {
		t.Fatalf("gene-expression recovery = %v, want > 0.5", rec)
	}
	if rel := RelevanceScore(planted, modules); rel < 0.5 {
		t.Fatalf("gene-expression relevance = %v, want > 0.5", rel)
	}
}
