package explain

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sparse"
)

// RenderCoClusterMatrix draws the positives of r with rows and columns
// reordered by dominant co-cluster, which makes the overlapping block
// structure of Figure 1 visible as contiguous dark regions. Rows/columns
// whose strongest affiliation falls below threshold are grouped at the
// end under the label '-'. Intended for small matrices (≲ 150 per side).
//
// Legend: '#' positive example, '+' unknown pair whose predicted
// probability exceeds 0.5 (a strong recommendation — the "white squares
// inside the clusters"), '.' everything else.
func RenderCoClusterMatrix(m *core.Model, r *sparse.Matrix, threshold float64) string {
	userOrder := dominantOrder(m.NumUsers(), threshold, m.UserFactor)
	itemOrder := dominantOrder(m.NumItems(), threshold, m.ItemFactor)

	var b strings.Builder
	b.WriteString("rows/cols grouped by dominant co-cluster; '#' positive, '+' P>0.5 recommendation\n\n")
	// Column header: dominant cluster per item group.
	b.WriteString("          ")
	for _, it := range itemOrder {
		b.WriteString(clusterGlyph(it.cluster))
	}
	b.WriteString("\n          ")
	for range itemOrder {
		b.WriteByte('-')
	}
	b.WriteByte('\n')
	prevCluster := -2
	for _, u := range userOrder {
		if u.cluster != prevCluster && prevCluster != -2 {
			b.WriteByte('\n') // visual gap between user groups
		}
		prevCluster = u.cluster
		fmt.Fprintf(&b, "u%-4d %s | ", u.idx, clusterGlyph(u.cluster))
		for _, it := range itemOrder {
			switch {
			case r.Has(u.idx, it.idx):
				b.WriteByte('#')
			case m.Predict(u.idx, it.idx) > 0.5:
				b.WriteByte('+')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

type ordered struct {
	idx     int
	cluster int     // dominant co-cluster, -1 for none
	weight  float64 // affiliation with the dominant cluster
}

func dominantOrder(n int, threshold float64, factor func(int) []float64) []ordered {
	out := make([]ordered, n)
	for i := 0; i < n; i++ {
		f := factor(i)
		best, bestW := -1, threshold
		for c, v := range f {
			if v >= bestW {
				best, bestW = c, v
			}
		}
		w := 0.0
		if best >= 0 {
			w = bestW
		}
		out[i] = ordered{idx: i, cluster: best, weight: w}
	}
	sort.SliceStable(out, func(a, b int) bool {
		ca, cb := out[a].cluster, out[b].cluster
		// Unaffiliated (-1) sorts last.
		if (ca == -1) != (cb == -1) {
			return cb == -1
		}
		if ca != cb {
			return ca < cb
		}
		if out[a].weight != out[b].weight {
			return out[a].weight > out[b].weight
		}
		return out[a].idx < out[b].idx
	})
	return out
}

// clusterGlyph maps a cluster id to a single printable character:
// 0-9, then a-z, then '*' for anything larger; '-' for unaffiliated.
func clusterGlyph(c int) string {
	switch {
	case c < 0:
		return "-"
	case c < 10:
		return string(rune('0' + c))
	case c < 36:
		return string(rune('a' + c - 10))
	default:
		return "*"
	}
}
