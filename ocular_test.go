package ocular_test

import (
	"strings"
	"testing"

	ocular "repro"
)

// TestEndToEndToyPipeline exercises the full public API on the paper's toy:
// generate -> train -> recommend -> explain -> render.
func TestEndToEndToyPipeline(t *testing.T) {
	toy := ocular.PaperToy()
	res, err := ocular.Train(toy.R, ocular.Config{K: 3, Lambda: 0.1, MaxIter: 300, Tol: 1e-7, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range toy.Held {
		recs := ocular.Recommend(res.Model, toy.R, h[0], 1)
		if len(recs) != 1 || recs[0] != h[1] {
			t.Errorf("user %d: top rec %v, want item %d", h[0], recs, h[1])
		}
	}
	ex := ocular.ExplainPair(res.Model, toy.R, 6, 4)
	if ex.Probability < 0.6 || len(ex.Reasons) != 2 {
		t.Fatalf("worked example: p=%v reasons=%d", ex.Probability, len(ex.Reasons))
	}
	text := ex.Render(toy.Dataset)
	if !strings.Contains(text, "Item 4 is recommended to User 6") {
		t.Errorf("rendered rationale wrong:\n%s", text)
	}
	if matrix := ocular.RenderProbabilityMatrix(res.Model, toy.R); !strings.Contains(matrix, "##") {
		t.Error("probability matrix render missing positives")
	}
}

// TestEndToEndSplitEvaluate runs the Table I protocol on the small preset
// and checks OCuLaR beats a degenerate popularity-free baseline.
func TestEndToEndSplitEvaluate(t *testing.T) {
	d := ocular.SyntheticSmall(9)
	sp := ocular.SplitDataset(d.Dataset, 0.75, 9)
	res, err := ocular.Train(sp.Train, ocular.Config{K: 8, Lambda: 2, MaxIter: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := ocular.Evaluate(res.Model, sp.Train, sp.Test, 20)
	if m.RecallAtM < 0.4 {
		t.Errorf("recall@20 = %v, want > 0.4 on planted data", m.RecallAtM)
	}
	curve := ocular.EvaluateCurve(res.Model, sp.Train, sp.Test, []int{5, 10, 20})
	if curve[2].RecallAtM != m.RecallAtM {
		t.Error("EvaluateCurve disagrees with Evaluate")
	}
}

// TestEndToEndBaselines trains every baseline through the facade on one
// split and sanity-checks the metrics are in (0, 1].
func TestEndToEndBaselines(t *testing.T) {
	d := ocular.SyntheticSmall(10)
	sp := ocular.SplitDataset(d.Dataset, 0.75, 10)
	recs := map[string]ocular.Recommender{}

	w, err := ocular.TrainWALS(sp.Train, ocular.WALSConfig{K: 8, B: 0.01, Lambda: 0.01, Iters: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs["wALS"] = w
	bp, err := ocular.TrainBPR(sp.Train, ocular.BPRConfig{K: 8, Epochs: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs["BPR"] = bp
	uk, err := ocular.TrainUserKNN(sp.Train, ocular.KNNConfig{Neighbors: 20})
	if err != nil {
		t.Fatal(err)
	}
	recs["user"] = uk
	ik, err := ocular.TrainItemKNN(sp.Train, ocular.KNNConfig{Neighbors: 20})
	if err != nil {
		t.Fatal(err)
	}
	recs["item"] = ik

	for name, rec := range recs {
		m := ocular.Evaluate(rec, sp.Train, sp.Test, 20)
		if m.RecallAtM <= 0 || m.RecallAtM > 1 {
			t.Errorf("%s: recall@20 = %v out of range", name, m.RecallAtM)
		}
	}
}

// TestEndToEndCommunity runs the Fig 2 comparison through the facade.
func TestEndToEndCommunity(t *testing.T) {
	toy := ocular.PaperToy()
	g := ocular.BipartiteGraph(toy.R)
	part := ocular.DetectModularity(g)
	if part.Count < 2 {
		t.Fatalf("modularity found %d communities", part.Count)
	}
	recs := ocular.CommunityRecommendations(part.Communities(), toy.R)
	hits := 0
	for _, h := range toy.Held {
		for _, r := range recs {
			if r == h {
				hits++
			}
		}
	}
	if hits >= 3 {
		t.Error("non-overlapping partition should not recover all 3 withheld pairs")
	}
	bc, err := ocular.FitBigClam(g, ocular.BigClamConfig{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(bc.Communities(ocular.BigClamDelta(g))) == 0 {
		t.Error("BIGCLAM found no communities")
	}
}

// TestEndToEndGridSearch runs the Fig 9 protocol at tiny scale.
func TestEndToEndGridSearch(t *testing.T) {
	d := ocular.SyntheticSmall(11)
	sp := ocular.SplitDataset(d.Dataset, 0.75, 11)
	res, err := ocular.GridSearch(sp.Train, sp.Test,
		ocular.GridSearchGrid{Ks: []int{4, 8}, Lambdas: []float64{1, 5}},
		ocular.GridSearchOptions{M: 10, Base: ocular.Config{MaxIter: 10, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	if res.Best.Metrics.RecallAtM <= 0 {
		t.Error("best cell has zero recall")
	}
}

// TestEndToEndCoClusterStats exercises the Fig 6 metrics through the facade.
func TestEndToEndCoClusterStats(t *testing.T) {
	d := ocular.SyntheticSmall(12)
	res, err := ocular.Train(d.R, ocular.Config{K: 6, Lambda: 2, MaxIter: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	clusters := ocular.CoClusters(res.Model, 0.3)
	if len(clusters) != 6 {
		t.Fatalf("clusters = %d, want K=6", len(clusters))
	}
	stats := ocular.CoClusterStatsOf(clusters, d.R)
	if stats.NonEmpty == 0 || stats.MeanDensity <= 0 {
		t.Errorf("degenerate stats: %+v", stats)
	}
	// Planted data density inside discovered co-clusters should beat the
	// global density.
	if stats.MeanDensity <= d.R.Density() {
		t.Errorf("co-cluster density %v not above global %v", stats.MeanDensity, d.R.Density())
	}
}

// TestLoadRatingsRoundTrip checks the facade loader against datagen-format
// output.
func TestLoadRatingsRoundTrip(t *testing.T) {
	d, err := ocular.LoadRatings(strings.NewReader("a,x\nb,x\na,y\n"), "rt", ocular.LoadOptions{Sep: ","})
	if err != nil {
		t.Fatal(err)
	}
	if d.Users() != 2 || d.Items() != 2 || d.R.NNZ() != 3 {
		t.Fatalf("round trip shape wrong: %v", d)
	}
}
