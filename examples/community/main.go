// Community-detection comparison: the Figure 2 experiment as a runnable
// example. Builds the bipartite graph of the paper's toy, runs
// non-overlapping modularity maximization and overlapping BIGCLAM, and
// contrasts the recommendations each implies with OCuLaR's.
//
// Run with: go run ./examples/community
package main

import (
	"fmt"
	"log"
	"sort"

	ocular "repro"
)

func main() {
	toy := ocular.PaperToy()
	g := ocular.BipartiteGraph(toy.R)
	fmt.Printf("%v lifted to %v\n\n", toy.Dataset, g)

	show := func(name string, sets [][]int) {
		fmt.Printf("%s:\n", name)
		for n, set := range sets {
			var users, items []int
			for _, v := range set {
				if v < toy.Users() {
					users = append(users, v)
				} else {
					items = append(items, v-toy.Users())
				}
			}
			sort.Ints(users)
			sort.Ints(items)
			fmt.Printf("  community %d: users %v x items %v\n", n+1, users, items)
		}
		recs := ocular.CommunityRecommendations(sets, toy.R)
		hits := 0
		for _, h := range toy.Held {
			for _, rec := range recs {
				if rec == h {
					hits++
				}
			}
		}
		fmt.Printf("  => implies %d candidate recommendations, recovering %d/%d withheld pairs\n\n",
			len(recs), hits, len(toy.Held))
	}

	part := ocular.DetectModularity(g)
	show("Modularity (non-overlapping)", part.Communities())

	bc, err := ocular.FitBigClam(g, ocular.BigClamConfig{K: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	show("BIGCLAM (overlapping, unregularized)", bc.Communities(ocular.BigClamDelta(g)))

	res, err := ocular.Train(toy.R, ocular.Config{K: 3, Lambda: 0.1, MaxIter: 300, Tol: 1e-7, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, h := range toy.Held {
		recs := ocular.Recommend(res.Model, toy.R, h[0], 1)
		if len(recs) > 0 && recs[0] == h[1] {
			hits++
		}
	}
	fmt.Printf("OCuLaR (overlapping co-clusters + regularization): recovers %d/%d withheld pairs\n",
		hits, len(toy.Held))
}
