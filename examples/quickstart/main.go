// Quickstart: train OCuLaR on the paper's 12x12 toy example, print the
// fitted probability matrix, and explain the worked recommendation of
// Section IV-C (item 4 for user 6).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ocular "repro"
)

func main() {
	toy := ocular.PaperToy()
	fmt.Println(toy.Dataset)

	res, err := ocular.Train(toy.R, ocular.Config{
		K:       3,   // the toy has three planted co-clusters
		Lambda:  0.1, // light regularization suffices at this scale
		MaxIter: 300,
		Tol:     1e-7,
		Seed:    4,
	})
	if err != nil {
		log.Fatal(err)
	}
	model := res.Model
	fmt.Printf("trained %v in %d iterations (converged=%v)\n\n",
		model, res.Iterations(), res.Converged)

	fmt.Println("Fitted probabilities (## = observed positive):")
	fmt.Println(ocular.RenderProbabilityMatrix(model, toy.R))

	fmt.Println("Top recommendation per user with withheld in-cluster pairs:")
	for _, h := range toy.Held {
		u := h[0]
		recs := ocular.Recommend(model, toy.R, u, 3)
		fmt.Printf("  user %d: top-3 = %v (withheld: item %d)\n", u, recs, h[1])
	}
	fmt.Println()

	ex := ocular.ExplainPair(model, toy.R, 6, 4)
	fmt.Print(ex.Render(toy.Dataset))
}
