// B2B scenario: the deployment setting of Section VIII. Train OCuLaR on the
// synthetic B2B dataset (clients x products with industry-flavored names),
// generate ranked recommendations for a few clients, and print the
// deployment-style rationale a salesperson would read (Fig 10), including
// the explicit names of similar clients — which the paper notes is
// acceptable in B2B, unlike B2C.
//
// Run with: go run ./examples/b2b
package main

import (
	"fmt"
	"log"

	ocular "repro"
)

func main() {
	d := ocular.SyntheticB2B(7)
	fmt.Println(d.Dataset)

	// Hold out a quarter of the purchases to show honest ranking quality.
	sp := ocular.SplitDataset(d.Dataset, 0.75, 7)
	res, err := ocular.Train(sp.Train, ocular.Config{K: 25, Lambda: 5, MaxIter: 80, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	model := res.Model

	met := ocular.Evaluate(model, sp.Train, sp.Test, 10)
	fmt.Printf("held-out ranking quality: %v\n\n", met)

	// Portfolio review for three clients: top-3 product opportunities each.
	for _, client := range []int{42, 300, 1111} {
		fmt.Printf("--- %s ---\n", d.UserName(client))
		fmt.Printf("owns %d products\n", sp.Train.RowNNZ(client))
		recs := ocular.Recommend(model, sp.Train, client, 3)
		for rank, item := range recs {
			fmt.Printf("%d. %s (confidence %.0f%%)\n",
				rank+1, d.ItemName(item), 100*model.Predict(client, item))
		}
		if len(recs) > 0 {
			// Full rationale for the top pick only.
			ex := ocular.ExplainPairOpts(model, sp.Train, client, recs[0], ocular.ExplainOptions{MaxPeers: 3})
			fmt.Print(ex.Render(d.Dataset))
		}
		fmt.Println()
	}

	// The co-cluster catalogue a sales team could browse.
	clusters := ocular.CoClusters(model, 0.3)
	stats := ocular.CoClusterStatsOf(clusters, sp.Train)
	fmt.Printf("co-cluster catalogue: %d non-empty co-clusters, avg %.0f clients x %.1f products, density %.2f\n",
		stats.NonEmpty, stats.MeanUsers, stats.MeanItems, stats.MeanDensity)
}
