// Gene-expression biclustering: the application the paper's conclusion
// singles out ("the algorithm presented can be used for solving large
// co-clustering problems in other disciplines as well, including ... the
// analysis of gene expression data [33]"). Genes play the role of users,
// experimental conditions the role of items, and an upregulation event is
// a positive example. OCuLaR's overlapping co-clusters are transcription
// modules; genes belong to several pathways, which is precisely what
// non-overlapping biclustering cannot express.
//
// The example trains OCuLaR on synthetic expression data with planted
// overlapping modules and scores recovery/relevance in the style of Prelic
// et al. 2006, against a non-overlapping modularity baseline.
//
// Run with: go run ./examples/genes
package main

import (
	"fmt"
	"log"

	ocular "repro"

	"repro/internal/explain"
	"repro/internal/graph"
)

func main() {
	d := ocular.SyntheticGeneExpression(5)
	fmt.Println(d.Dataset)
	fmt.Printf("planted transcription modules: %d (overlapping)\n\n", len(d.Clusters))

	res, err := ocular.Train(d.R, ocular.Config{
		K: len(d.Clusters), Lambda: 3, MaxIter: 120, Tol: 1e-6, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	found := ocular.CoClusters(res.Model, 0.3)

	planted := make([]explain.Module, len(d.Clusters))
	for n, c := range d.Clusters {
		planted[n] = explain.ModuleOfPlanted(c)
	}
	modules := make([]explain.Module, 0, len(found))
	for _, c := range found {
		if len(c.Users) > 0 && len(c.Items) > 0 {
			modules = append(modules, explain.ModuleOf(c))
		}
	}

	fmt.Printf("OCuLaR:     recovery %.3f, relevance %.3f (%d modules found)\n",
		explain.RecoveryScore(planted, modules),
		explain.RelevanceScore(planted, modules), len(modules))

	// Non-overlapping baseline: modularity on the gene-condition graph.
	part := ocular.DetectModularity(graph.NewBipartite(d.R))
	var baseline []explain.Module
	for _, set := range part.Communities() {
		var m explain.Module
		for _, v := range set {
			if v < d.Users() {
				m.Users = append(m.Users, v)
			} else {
				m.Items = append(m.Items, v-d.Users())
			}
		}
		if len(m.Users) > 0 && len(m.Items) > 0 {
			baseline = append(baseline, m)
		}
	}
	fmt.Printf("Modularity: recovery %.3f, relevance %.3f (%d modules found)\n\n",
		explain.RecoveryScore(planted, baseline),
		explain.RelevanceScore(planted, baseline), len(baseline))

	// Show one recovered module with gene/condition names.
	best, bestScore := -1, 0.0
	for n, m := range modules {
		if s := explain.RecoveryScore(planted, []explain.Module{m}); s > bestScore {
			best, bestScore = n, s
		}
	}
	if best >= 0 {
		m := modules[best]
		fmt.Printf("best-matching module (%d genes x %d conditions):\n  genes: ", len(m.Users), len(m.Items))
		for n, g := range m.Users {
			if n == 6 {
				fmt.Printf("... (+%d more)", len(m.Users)-6)
				break
			}
			fmt.Printf("%s ", d.UserName(g))
		}
		fmt.Printf("\n  conditions: ")
		for n, c := range m.Items {
			if n == 8 {
				fmt.Printf("... (+%d more)", len(m.Items)-8)
				break
			}
			fmt.Printf("%s ", d.ItemName(c))
		}
		fmt.Println()
	}
}
