// MovieLens-style benchmark: compare all six algorithms of Table I on the
// MovieLens substitute dataset with a single 75/25 split, printing
// recall@M and MAP@M for several cutoffs (the Fig 5 setting at example
// scale).
//
// Run with: go run ./examples/movielens
//
// To run on the real MovieLens 1M data instead, pass the path to
// ratings.dat: go run ./examples/movielens /path/to/ratings.dat
package main

import (
	"fmt"
	"log"
	"os"

	ocular "repro"
)

func main() {
	var d *ocular.Dataset
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		loaded, err := ocular.LoadRatings(f, "movielens-1m", ocular.MovieLensOptions())
		if err != nil {
			log.Fatal(err)
		}
		d = loaded
	} else {
		d = ocular.SyntheticMovieLens(11).Dataset
	}
	fmt.Println(d)

	sp := ocular.SplitDataset(d, 0.75, 11)
	ms := []int{10, 25, 50, 100}

	type algo struct {
		name  string
		train func() (ocular.Recommender, error)
	}
	algos := []algo{
		{"OCuLaR", func() (ocular.Recommender, error) {
			res, err := ocular.Train(sp.Train, ocular.Config{K: 40, Lambda: 8, MaxIter: 100, Seed: 1})
			if err != nil {
				return nil, err
			}
			return res.Model, nil
		}},
		{"R-OCuLaR", func() (ocular.Recommender, error) {
			res, err := ocular.Train(sp.Train, ocular.Config{K: 40, Lambda: 100, MaxIter: 100, Relative: true, Seed: 1})
			if err != nil {
				return nil, err
			}
			return res.Model, nil
		}},
		{"wALS", func() (ocular.Recommender, error) {
			return ocular.TrainWALS(sp.Train, ocular.WALSConfig{K: 40, B: 0.01, Lambda: 0.01, Iters: 12, Seed: 1})
		}},
		{"BPR", func() (ocular.Recommender, error) {
			return ocular.TrainBPR(sp.Train, ocular.BPRConfig{K: 40, Epochs: 40, Seed: 1})
		}},
		{"user-based", func() (ocular.Recommender, error) {
			return ocular.TrainUserKNN(sp.Train, ocular.KNNConfig{Neighbors: 50})
		}},
		{"item-based", func() (ocular.Recommender, error) {
			return ocular.TrainItemKNN(sp.Train, ocular.KNNConfig{Neighbors: 50})
		}},
	}

	fmt.Printf("\n%-11s", "recall@M")
	for _, m := range ms {
		fmt.Printf("%9d", m)
	}
	fmt.Printf("  | %-9s", "MAP@M")
	for _, m := range ms {
		fmt.Printf("%9d", m)
	}
	fmt.Println()
	for _, a := range algos {
		rec, err := a.train()
		if err != nil {
			log.Fatalf("%s: %v", a.name, err)
		}
		curve := ocular.EvaluateCurve(rec, sp.Train, sp.Test, ms)
		fmt.Printf("%-11s", a.name)
		for _, c := range curve {
			fmt.Printf("%9.4f", c.RecallAtM)
		}
		fmt.Printf("  | %-9s", "")
		for _, c := range curve {
			fmt.Printf("%9.4f", c.MAPAtM)
		}
		fmt.Println()
	}
}
