// Command promcheck validates Prometheus text exposition (format 0.0.4)
// read from stdin or the files given as arguments: metric and label
// name syntax, TYPE lines, family contiguity, and histogram invariants
// (cumulative buckets, trailing +Inf equal to _count, _sum present).
// CI pipes each tier's GET /metrics?format=prometheus through it; any
// violation exits 1 with the offending line number.
//
//	curl -s 'localhost:8080/metrics?format=prometheus' | promcheck
//	promcheck serve.prom router.prom
package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		if err := obs.CheckExposition(os.Stdin); err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: stdin: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("stdin: ok")
		return
	}
	failed := false
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
			failed = true
			continue
		}
		err = obs.CheckExposition(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if failed {
		os.Exit(1)
	}
}
