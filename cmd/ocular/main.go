// Command ocular trains an OCuLaR model and prints ranked, explained
// recommendations.
//
// Data comes either from a ratings file (-data, with -sep/-threshold) or a
// built-in synthetic preset (-preset movielens|citeulike|b2b|netflix|genes|small).
//
// Examples:
//
//	ocular -preset b2b -user 42 -top 5 -explain
//	ocular -data ratings.dat -sep :: -threshold 3 -k 100 -lambda 30 -holdout 0.25
//	ocular -preset small -all -top 3
package main

import (
	"flag"
	"fmt"
	"log"

	ocular "repro"

	"repro/internal/cliutil"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ocular: ")
	var (
		dataPath  = flag.String("data", "", "ratings file (user, item[, rating] per line)")
		sep       = flag.String("sep", ",", "field separator for -data (e.g. \",\", \"::\", \"\\t\")")
		threshold = flag.Float64("threshold", 0, "min rating counted as positive (0 = one-class two-column data)")
		preset    = flag.String("preset", "", "synthetic preset: movielens, citeulike, b2b, netflix, genes, small")
		seed      = flag.Uint64("seed", 1, "random seed")

		k        = flag.Int("k", 30, "number of co-clusters K")
		lambda   = flag.Float64("lambda", 5, "l2 regularization weight")
		relative = flag.Bool("relative", false, "use the R-OCuLaR relative-preference objective")
		iters    = flag.Int("iters", 150, "max training iterations")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all cores)")

		holdout = flag.Float64("holdout", 0, "fraction of positives held out for evaluation (0 = train on all)")
		user    = flag.Int("user", -1, "user index to recommend for")
		all     = flag.Bool("all", false, "print the top recommendation for every user")
		top     = flag.Int("top", 5, "recommendations per user")
		explain = flag.Bool("explain", false, "print the co-cluster rationale per recommendation")
		m       = flag.Int("m", 50, "cutoff for holdout evaluation metrics")
		verbose = flag.Bool("v", false, "print objective per training iteration")
		save    = flag.String("save", "", "write the trained model to this file (serve it with ocular-serve)")
		saveF32 = flag.Bool("save-f32", true, "include a float32 copy of the factors in the saved model (ocular-serve scores it at half the memory traffic; score error < 1.5e-6 up to K=256, see linalg.ScoreErrorBoundF32)")

		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address while training (empty disables)")
	)
	flag.Parse()
	if *pprofAddr != "" {
		ln, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		log.Printf("pprof on %s", ln.Addr())
	}

	d, err := cliutil.LoadData(*dataPath, *sep, *threshold, *preset, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d)

	train := d.R
	var test *ocular.Matrix
	if *holdout > 0 {
		sp := ocular.SplitDataset(d, 1-*holdout, *seed)
		train, test = sp.Train, sp.Test
		fmt.Printf("holding out %.0f%% of positives for evaluation\n", 100**holdout)
	}

	cfg := ocular.Config{
		K: *k, Lambda: *lambda, Relative: *relative,
		MaxIter: *iters, Seed: *seed, Workers: *workers,
	}
	if *verbose {
		cfg.OnIteration = func(iter int, q float64) {
			fmt.Printf("  iter %3d: objective %.2f\n", iter+1, q)
		}
	}
	res, err := ocular.Train(train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	model := res.Model
	fmt.Printf("trained %v in %d iterations (converged=%v)\n",
		model, res.Iterations(), res.Converged)

	if *save != "" {
		if err := model.SaveModelFileOpts(*save, ocular.SaveOptions{Float32: *saveF32}); err != nil {
			log.Fatal(err)
		}
		suffix := ""
		if *saveF32 {
			suffix = ", float32 scoring section"
		}
		fmt.Printf("model saved to %s (format v2%s)\n", *save, suffix)
	}

	if test != nil {
		fmt.Printf("held-out metrics: %v AUC=%.4f\n",
			ocular.Evaluate(model, train, test, *m), ocular.AUC(model, train, test))
	}

	printRecs := func(u int) {
		recs := ocular.Recommend(model, train, u, *top)
		fmt.Printf("\n%s:\n", d.UserName(u))
		for rank, i := range recs {
			fmt.Printf("  %d. %s (confidence %.1f%%)\n", rank+1, d.ItemName(i), 100*model.Predict(u, i))
			if *explain {
				ex := ocular.ExplainPairOpts(model, train, u, i, ocular.ExplainOptions{MaxPeers: 3})
				for _, r := range ex.Reasons {
					fmt.Printf("     - co-cluster %d (contribution %.2f): similar to ", r.ClusterID, r.Contribution)
					for n, v := range r.SimilarUsers {
						if n > 0 {
							fmt.Print(", ")
						}
						fmt.Print(d.UserName(v))
					}
					fmt.Println()
				}
			}
		}
	}

	switch {
	case *user >= 0:
		if *user >= d.Users() {
			log.Fatalf("user %d out of range (%d users)", *user, d.Users())
		}
		printRecs(*user)
	case *all:
		for u := 0; u < d.Users(); u++ {
			if train.RowNNZ(u) == 0 {
				continue
			}
			recs := ocular.Recommend(model, train, u, 1)
			if len(recs) > 0 {
				fmt.Printf("%s -> %s (%.1f%%)\n",
					d.UserName(u), d.ItemName(recs[0]), 100*model.Predict(u, recs[0]))
			}
		}
	default:
		fmt.Println("\n(no -user or -all given; pass one to print recommendations)")
	}
}
