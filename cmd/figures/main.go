// Command figures regenerates every table and figure of the paper's
// evaluation section on the synthetic substitute datasets (DESIGN.md §3-4).
//
// Usage:
//
//	figures -exp all            # everything (several minutes on one core)
//	figures -exp table1         # Table I: six algorithms x three datasets
//	figures -exp fig1,fig2,fig3 # the introductory toy experiments
//	figures -exp fig7 -quick    # reduced budgets for a fast pass
//
// Output is plain text: one block per experiment with the same rows/series
// the paper reports. Numbers are not expected to match the paper's absolute
// values (the datasets are synthetic substitutes); the comparisons of
// EXPERIMENTS.md are about ordering and shape.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

type runConfig struct {
	quick     bool
	seed      uint64
	instances int
	out       io.Writer
}

var experiments = []struct {
	name string
	desc string
	run  func(rc runConfig)
}{
	{"fig1", "toy overlapping co-clusters and OCuLaR's recommendations", runFig1},
	{"fig2", "Modularity and BIGCLAM on the toy (they miss recommendations)", runFig2},
	{"fig3", "fitted probability matrix and the worked explanation", runFig3},
	{"table1", "MAP@50 / recall@50 for all six algorithms on three datasets", runTable1},
	{"fig5", "recall@M and MAP@M curves on the MovieLens substitute", runFig5},
	{"fig6", "recall and co-cluster metrics vs K for several lambda", runFig6},
	{"fig7", "training time per iteration vs dataset fraction (linearity)", runFig7},
	{"fig8", "serial vs parallel engine: objective-vs-time and speedup", runFig8},
	{"fig9", "(K, lambda) grid-search heatmap on the B2B substitute", runFig9},
	{"fig10", "deployment-style textual rationale with client names", runFig10},
}

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiments: all, table1, fig1..fig10")
		quick     = flag.Bool("quick", false, "reduced budgets (smaller grids, fewer instances)")
		seed      = flag.Uint64("seed", 1, "base random seed")
		instances = flag.Int("instances", 0, "problem instances to average for table1/fig5 (0 = default)")
		list      = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("  %-7s %s\n", e.name, e.desc)
		}
		return
	}

	rc := runConfig{quick: *quick, seed: *seed, instances: *instances, out: os.Stdout}
	want := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(name)] = true
	}
	ran := 0
	for _, e := range experiments {
		if want["all"] || want[e.name] {
			e.run(rc)
			ran++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "figures: no experiment matches %q (use -list)\n", *exp)
		os.Exit(2)
	}
}

func (rc runConfig) printf(format string, args ...any) {
	fmt.Fprintf(rc.out, format, args...)
}

func (rc runConfig) header(title string) {
	rc.printf("\n== %s ==\n\n", title)
}
