package main

import (
	"time"

	ocular "repro"

	"repro/internal/dataset"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// runFig7 reproduces the linear-scalability experiment of Fig 7: training
// time per iteration over increasing fractions of the Netflix substitute,
// for K in {10, 50, 100}. The claim under test is linearity in nnz and in
// K, not any absolute time.
func runFig7(rc runConfig) {
	rc.header("Figure 7: running time per iteration vs dataset fraction (Netflix substitute)")
	scale := 0.35
	iters := 3
	fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	ks := []int{10, 50, 100}
	if rc.quick {
		scale, iters = 0.1, 2
		fracs = []float64{0.25, 0.5, 1.0}
		ks = []int{10, 50}
	}
	d := ocular.SyntheticNetflix(rc.seed, scale)
	rc.printf("base dataset: %s\n\n", d)
	rc.printf("  %-10s %-12s %-8s %14s %16s\n", "fraction", "positives", "K", "sec/iter", "us/(nnz*K)")
	r := rng.New(rc.seed * 77)
	for _, frac := range fracs {
		sub := dataset.SubsampleEntries(d.R, frac, r)
		for _, k := range ks {
			res, err := ocular.Train(sub, ocular.Config{
				K: k, Lambda: 5, MaxIter: iters, Tol: 1e-12, Seed: rc.seed,
			})
			if err != nil {
				panic(err)
			}
			var total time.Duration
			for _, t := range res.IterTime {
				total += t
			}
			perIter := total.Seconds() / float64(len(res.IterTime))
			// Normalized cost: should be roughly constant if time is
			// linear in nnz*K (the paper's claim).
			norm := perIter * 1e6 / (float64(sub.NNZ()) * float64(k))
			rc.printf("  %-10.2f %-12d %-8d %14.4f %16.4f\n",
				frac, sub.NNZ(), k, perIter, norm)
		}
	}
	rc.printf("\n(us/(nnz*K) roughly constant across rows => time linear in positives and in K)\n")
}

// runFig8 substitutes the paper's CPU-vs-GPU comparison with the serial
// reference engine versus the goroutine-parallel engine (DESIGN.md §4):
// same numerics, distance-to-optimal-objective vs wall-clock time, and the
// speedup at equal accuracy.
func runFig8(rc runConfig) {
	rc.header("Figure 8: serial vs parallel engine (GPU substitute), distance to optimal objective vs time")
	scale := 0.35
	k := 50
	maxIter := 25
	if rc.quick {
		scale, k, maxIter = 0.1, 20, 10
	}
	d := ocular.SyntheticNetflix(rc.seed, scale)
	workers := parallel.DefaultWorkers()
	rc.printf("dataset: %s, K=%d, workers(parallel)=%d\n\n", d, k, workers)

	type trace struct {
		name    string
		times   []float64 // cumulative seconds after each iteration
		objGap  []float64 // objective distance to the best seen across engines
		obj     []float64
		totalS  float64
		perIter float64
	}
	run := func(name string, workersN int) trace {
		res, err := ocular.Train(d.R, ocular.Config{
			K: k, Lambda: 5, MaxIter: maxIter, Tol: 1e-12, Seed: rc.seed, Workers: workersN,
		})
		if err != nil {
			panic(err)
		}
		tr := trace{name: name}
		cum := 0.0
		for n, t := range res.IterTime {
			cum += t.Seconds()
			tr.times = append(tr.times, cum)
			tr.obj = append(tr.obj, res.Objective[n+1])
		}
		tr.totalS = cum
		tr.perIter = cum / float64(len(res.IterTime))
		return tr
	}

	serial := run("serial", 1)
	par := run("parallel", workers)

	best := serial.obj[len(serial.obj)-1]
	if p := par.obj[len(par.obj)-1]; p < best {
		best = p
	}
	for _, tr := range []*trace{&serial, &par} {
		for _, o := range tr.obj {
			tr.objGap = append(tr.objGap, o-best)
		}
	}
	rc.printf("  %-10s %12s %12s %16s\n", "engine", "iter", "time (s)", "obj - best")
	for _, tr := range []trace{serial, par} {
		for n := range tr.times {
			if n%5 == 0 || n == len(tr.times)-1 {
				rc.printf("  %-10s %12d %12.3f %16.1f\n", tr.name, n+1, tr.times[n], tr.objGap[n])
			}
		}
	}
	rc.printf("\nper-iteration speedup (serial/parallel): %.2fx on %d worker(s)\n",
		serial.perIter/par.perIter, workers)
	rc.printf("(identical numerics: engines differ only in wall-clock; the paper reports 57x on a TITAN X GPU)\n")
}

// runFig9 reproduces the grid-search heatmap of Fig 9 on the B2B
// substitute: recall@50 over a (K, lambda) grid, fanned out over workers as
// the paper fanned cells over a Spark+GPU cluster.
func runFig9(rc runConfig) {
	rc.header("Figure 9: (K, lambda) grid search heatmap on the B2B substitute (recall@50)")
	d := ocular.SyntheticB2B(rc.seed)
	sp := ocular.SplitDataset(d.Dataset, 0.75, rc.seed*1000)
	grid := ocular.GridSearchGrid{
		Ks:      []int{5, 10, 15, 20, 30, 45, 60},
		Lambdas: []float64{0, 1, 2, 5, 10, 20, 50},
	}
	if rc.quick {
		grid = ocular.GridSearchGrid{Ks: []int{10, 30}, Lambdas: []float64{1, 10}}
	}
	res, err := ocular.GridSearch(sp.Train, sp.Test, grid, ocular.GridSearchOptions{
		M:       50,
		Base:    ocular.Config{MaxIter: 40, Seed: rc.seed},
		Workers: parallel.DefaultWorkers(),
	})
	if err != nil {
		panic(err)
	}
	rc.printf("%s\n", res.Heatmap(nil))
	rc.printf("best cell: K=%d lambda=%.4g with recall@50=%.4f (%d cells searched)\n",
		res.Best.K, res.Best.Lambda, res.Best.Metrics.RecallAtM, len(res.Cells))
}
