package main

import (
	"fmt"

	ocular "repro"
)

// algoSpec describes how to build one algorithm of the Table I suite: a
// hyper-parameter candidate list (the paper's "we test a number of
// hyper-parameters and report only the best results") and a trainer.
type algoSpec struct {
	name       string
	candidates []any
	train      func(r *ocular.Matrix, cand any, seed uint64) (ocular.Recommender, error)
}

// suite returns the six algorithms of Table I with dataset-scaled
// hyper-parameter grids. kBase scales the factorization ranks to the
// dataset (the paper searched K in 100-200 on datasets ~16x larger).
func suite(quick bool) []algoSpec {
	ks := []int{30, 60}
	lams := []float64{2, 8, 30}
	rlams := []float64{30, 100, 300}
	walsKs := []int{20, 40}
	bprCands := []any{
		ocular.BPRConfig{K: 20, Epochs: 40},
		ocular.BPRConfig{K: 40, Epochs: 40},
	}
	nbrs := []int{20, 50, 100}
	if quick {
		ks, lams, rlams = []int{30}, []float64{8}, []float64{100}
		walsKs = []int{40}
		bprCands = bprCands[1:]
		nbrs = []int{50}
	}

	var ocularCands, rocularCands []any
	for _, k := range ks {
		for _, l := range lams {
			ocularCands = append(ocularCands, ocular.Config{K: k, Lambda: l, MaxIter: 150, Tol: 1e-5})
		}
		for _, l := range rlams {
			rocularCands = append(rocularCands, ocular.Config{K: k, Lambda: l, MaxIter: 150, Tol: 1e-5, Relative: true})
		}
	}
	var walsCands []any
	for _, k := range walsKs {
		walsCands = append(walsCands, ocular.WALSConfig{K: k, B: 0.01, Lambda: 0.01, Iters: 12})
	}
	var knnCands []any
	for _, n := range nbrs {
		knnCands = append(knnCands, ocular.KNNConfig{Neighbors: n})
	}

	return []algoSpec{
		{
			name:       "OCuLaR",
			candidates: ocularCands,
			train: func(r *ocular.Matrix, cand any, seed uint64) (ocular.Recommender, error) {
				cfg := cand.(ocular.Config)
				cfg.Seed = seed
				res, err := ocular.Train(r, cfg)
				if err != nil {
					return nil, err
				}
				return res.Model, nil
			},
		},
		{
			name:       "R-OCuLaR",
			candidates: rocularCands,
			train: func(r *ocular.Matrix, cand any, seed uint64) (ocular.Recommender, error) {
				cfg := cand.(ocular.Config)
				cfg.Seed = seed
				res, err := ocular.Train(r, cfg)
				if err != nil {
					return nil, err
				}
				return res.Model, nil
			},
		},
		{
			name:       "wALS",
			candidates: walsCands,
			train: func(r *ocular.Matrix, cand any, seed uint64) (ocular.Recommender, error) {
				cfg := cand.(ocular.WALSConfig)
				cfg.Seed = seed
				return ocular.TrainWALS(r, cfg)
			},
		},
		{
			name:       "BPR",
			candidates: bprCands,
			train: func(r *ocular.Matrix, cand any, seed uint64) (ocular.Recommender, error) {
				cfg := cand.(ocular.BPRConfig)
				cfg.Seed = seed
				return ocular.TrainBPR(r, cfg)
			},
		},
		{
			name:       "user-based",
			candidates: knnCands,
			train: func(r *ocular.Matrix, cand any, seed uint64) (ocular.Recommender, error) {
				return ocular.TrainUserKNN(r, cand.(ocular.KNNConfig))
			},
		},
		{
			name:       "item-based",
			candidates: knnCands,
			train: func(r *ocular.Matrix, cand any, seed uint64) (ocular.Recommender, error) {
				return ocular.TrainItemKNN(r, cand.(ocular.KNNConfig))
			},
		},
	}
}

// tune picks, per algorithm, the candidate with the best recall@50 on the
// given tuning split, mirroring the paper's protocol. It returns the chosen
// candidate per spec index.
func tune(specs []algoSpec, tr ocular.Split, seed uint64, m int) ([]any, error) {
	chosen := make([]any, len(specs))
	for si, spec := range specs {
		if len(spec.candidates) == 1 {
			chosen[si] = spec.candidates[0]
			continue
		}
		best, bestRecall := -1, -1.0
		for ci, cand := range spec.candidates {
			rec, err := spec.train(tr.Train, cand, seed)
			if err != nil {
				return nil, fmt.Errorf("tuning %s candidate %d: %w", spec.name, ci, err)
			}
			r := ocular.Evaluate(rec, tr.Train, tr.Test, m).RecallAtM
			if r > bestRecall {
				best, bestRecall = ci, r
			}
		}
		chosen[si] = spec.candidates[best]
	}
	return chosen, nil
}
