package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExperimentsSmoke runs every experiment in quick mode and checks each
// produces its expected headline content. This is the regression net for
// the regenerators behind DESIGN.md §3.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take seconds; skipped with -short")
	}
	wantFragments := map[string][]string{
		"fig1":   {"Figure 1", "HIT", "Planted co-clusters"},
		"fig2":   {"Figure 2", "Modularity", "BIGCLAM", "OCuLaR"},
		"fig3":   {"Figure 3", "recommended to User 6", "f_item4"},
		"table1": {"Table I", "movielens-syn", "citeulike-syn", "b2b-syn", "wALS", "BPR"},
		"fig5":   {"Figure 5", "recall@M", "MAP@M", "item-based"},
		"fig6":   {"Figure 6", "users/cc", "density"},
		"fig7":   {"Figure 7", "sec/iter", "linear"},
		"fig8":   {"Figure 8", "speedup", "serial", "parallel"},
		"fig9":   {"Figure 9", "best cell", "lambda"},
		"fig10":  {"Figure 10", "recommended to Client", "co-cluster"},
	}
	for _, e := range experiments {
		e := e
		t.Run(e.name, func(t *testing.T) {
			var buf bytes.Buffer
			e.run(runConfig{quick: true, seed: 1, out: &buf})
			out := buf.String()
			if len(out) < 100 {
				t.Fatalf("suspiciously short output (%d bytes):\n%s", len(out), out)
			}
			for _, frag := range wantFragments[e.name] {
				if !strings.Contains(out, frag) {
					t.Errorf("output missing %q", frag)
				}
			}
		})
	}
}

// TestFig1RecommendationsAllHit asserts the headline toy result end to end
// through the regenerator itself.
func TestFig1RecommendationsAllHit(t *testing.T) {
	var buf bytes.Buffer
	runFig1(runConfig{quick: true, seed: 1, out: &buf})
	if got := strings.Count(buf.String(), "[HIT]"); got != 3 {
		t.Fatalf("fig1 hits = %d, want 3:\n%s", got, buf.String())
	}
	if strings.Contains(buf.String(), "[MISS]") {
		t.Fatal("fig1 contains a MISS")
	}
}
