package main

import (
	ocular "repro"
)

// table1Datasets are the three datasets of Table I (Netflix is excluded
// there, as in the paper: "not all baselines can be run for very large
// datasets").
func table1Datasets(seed uint64) []*ocular.Planted {
	return []*ocular.Planted{
		ocular.SyntheticMovieLens(seed),
		ocular.SyntheticCiteULike(seed),
		ocular.SyntheticB2B(seed),
	}
}

// runTable1 reproduces Table I: MAP@50 and recall@50 of the six algorithms
// on the MovieLens, CiteULike and B2B substitutes, averaged over
// independent 75/25 problem instances, with per-algorithm hyper-parameter
// tuning on a held-out instance (the paper's protocol).
func runTable1(rc runConfig) {
	rc.header("Table I: comparison with baseline one-class recommenders (MAP@50 / recall@50)")
	const m = 50
	instances := rc.instances
	if instances == 0 {
		if rc.quick {
			instances = 1
		} else {
			instances = 3
		}
	}
	specs := suite(rc.quick)

	for _, d := range table1Datasets(rc.seed) {
		rc.printf("%s\n", d)
		// Tune on a dedicated split, then evaluate on fresh instances.
		tuneSplit := ocular.SplitDataset(d.Dataset, 0.75, rc.seed*1000+999)
		chosen, err := tune(specs, tuneSplit, rc.seed, m)
		if err != nil {
			panic(err)
		}
		rc.printf("  %-11s %10s %10s   (avg over %d instances)\n", "algorithm", "MAP@50", "recall@50", instances)
		for si, spec := range specs {
			var sumMAP, sumRecall float64
			for inst := 0; inst < instances; inst++ {
				sp := ocular.SplitDataset(d.Dataset, 0.75, rc.seed*1000+uint64(inst))
				rec, err := spec.train(sp.Train, chosen[si], rc.seed+uint64(inst))
				if err != nil {
					panic(err)
				}
				met := ocular.Evaluate(rec, sp.Train, sp.Test, m)
				sumMAP += met.MAPAtM
				sumRecall += met.RecallAtM
			}
			rc.printf("  %-11s %10.4f %10.4f\n", spec.name,
				sumMAP/float64(instances), sumRecall/float64(instances))
		}
		rc.printf("\n")
	}
}

// runFig5 reproduces the recall@M / MAP@M curves of Fig 5 on the MovieLens
// substitute for all six algorithms.
func runFig5(rc runConfig) {
	rc.header("Figure 5: recall@M and MAP@M vs M on the MovieLens substitute")
	d := ocular.SyntheticMovieLens(rc.seed)
	sp := ocular.SplitDataset(d.Dataset, 0.75, rc.seed*1000)
	specs := suite(rc.quick)
	chosen, err := tune(specs, ocular.SplitDataset(d.Dataset, 0.75, rc.seed*1000+999), rc.seed, 50)
	if err != nil {
		panic(err)
	}
	ms := []int{5, 10, 20, 30, 50, 75, 100}
	if rc.quick {
		ms = []int{10, 50, 100}
	}

	type curve struct {
		name string
		mets []ocular.Metrics
	}
	var curves []curve
	for si, spec := range specs {
		rec, err := spec.train(sp.Train, chosen[si], rc.seed)
		if err != nil {
			panic(err)
		}
		curves = append(curves, curve{spec.name, ocular.EvaluateCurve(rec, sp.Train, sp.Test, ms)})
	}

	for _, metric := range []string{"recall@M", "MAP@M"} {
		rc.printf("%s:\n  %-11s", metric, "M")
		for _, m := range ms {
			rc.printf("%9d", m)
		}
		rc.printf("\n")
		for _, c := range curves {
			rc.printf("  %-11s", c.name)
			for n := range ms {
				v := c.mets[n].RecallAtM
				if metric == "MAP@M" {
					v = c.mets[n].MAPAtM
				}
				rc.printf("%9.4f", v)
			}
			rc.printf("\n")
		}
		rc.printf("\n")
	}
}

// runFig6 reproduces Fig 6: recall@50 and co-cluster shape metrics while
// sweeping K for several regularization strengths. The lambda values are
// scaled to the substitute's size (the paper's 0/30/100 were for the 16x
// larger MovieLens 1M).
func runFig6(rc runConfig) {
	rc.header("Figure 6: recall and co-cluster metrics vs (K, lambda)")
	d := ocular.SyntheticMovieLens(rc.seed)
	sp := ocular.SplitDataset(d.Dataset, 0.75, rc.seed*1000)
	ks := []int{10, 20, 40, 60, 80}
	lambdas := []float64{0, 5, 20}
	if rc.quick {
		ks = []int{10, 40}
		lambdas = []float64{0, 5}
	}
	const threshold = 0.3

	rc.printf("  %-8s %-8s %10s %12s %12s %12s %12s\n",
		"lambda", "K", "recall@50", "users/cc", "items/cc", "density", "cc/user")
	for _, lam := range lambdas {
		for _, k := range ks {
			res, err := ocular.Train(sp.Train, ocular.Config{
				K: k, Lambda: lam, MaxIter: 60, Seed: rc.seed,
			})
			if err != nil {
				panic(err)
			}
			met := ocular.Evaluate(res.Model, sp.Train, sp.Test, 50)
			stats := ocular.CoClusterStatsOf(ocular.CoClusters(res.Model, threshold), sp.Train)
			rc.printf("  %-8.4g %-8d %10.4f %12.1f %12.1f %12.3f %12.2f\n",
				lam, k, met.RecallAtM, stats.MeanUsers, stats.MeanItems,
				stats.MeanDensity, stats.MeanUserMemberships)
		}
		rc.printf("\n")
	}
}
