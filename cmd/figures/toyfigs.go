package main

import (
	"sort"
	"strconv"
	"strings"

	ocular "repro"
)

// toyModel trains OCuLaR on the paper's toy with the settings that
// reproduce the worked example of Section IV-C.
func toyModel(seed uint64) (*ocular.Toy, *ocular.Model) {
	toy := ocular.PaperToy()
	res, err := ocular.Train(toy.R, ocular.Config{
		K: 3, Lambda: 0.1, MaxIter: 300, Tol: 1e-7, Seed: seed,
	})
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return toy, res.Model
}

// runFig1 prints the toy matrix with its planted overlapping co-clusters
// and shows that OCuLaR's top in-cluster recommendations are exactly the
// withheld pairs (the white squares of Fig 1).
func runFig1(rc runConfig) {
	rc.header("Figure 1: overlapping user-item co-clusters on the toy example")
	toy, model := toyModel(rc.seed + 3)

	rc.printf("Positives (##), withheld in-cluster pairs (**):\n\n      ")
	for i := 0; i < toy.Items(); i++ {
		rc.printf("%4d", i)
	}
	rc.printf("\n")
	heldSet := map[[2]int]bool{}
	for _, h := range toy.Held {
		heldSet[h] = true
	}
	for u := 0; u < toy.Users(); u++ {
		rc.printf("u%-4d ", u)
		for i := 0; i < toy.Items(); i++ {
			switch {
			case toy.R.Has(u, i):
				rc.printf("  ##")
			case heldSet[[2]int{u, i}]:
				rc.printf("  **")
			default:
				rc.printf("   .")
			}
		}
		rc.printf("\n")
	}
	rc.printf("\nPlanted co-clusters:\n")
	for n, cl := range toy.Clusters {
		rc.printf("  %d: users %v x items %v\n", n+1, cl.Users, cl.Items)
	}
	rc.printf("\nOCuLaR top recommendation per affected user (want the ** pairs):\n")
	for _, h := range toy.Held {
		recs := ocular.Recommend(model, toy.R, h[0], 1)
		mark := "MISS"
		if len(recs) > 0 && recs[0] == h[1] {
			mark = "HIT"
		}
		rc.printf("  user %2d -> item %2d (p=%.2f)  withheld: item %2d  [%s]\n",
			h[0], recs[0], model.Predict(h[0], recs[0]), h[1], mark)
	}
}

// runFig2 applies non-overlapping modularity and overlapping BIGCLAM to the
// toy's bipartite graph and counts how many withheld recommendations each
// recovers, versus OCuLaR's 3/3.
func runFig2(rc runConfig) {
	rc.header("Figure 2: community-detection baselines on the toy example")
	toy, model := toyModel(rc.seed + 3)
	g := ocular.BipartiteGraph(toy.R)

	countHits := func(recs [][2]int) int {
		hits := 0
		for _, h := range toy.Held {
			for _, rec := range recs {
				if rec == h {
					hits++
					break
				}
			}
		}
		return hits
	}

	// Modularity: non-overlapping partition of the user+item node set.
	part := ocular.DetectModularity(g)
	modRecs := ocular.CommunityRecommendations(part.Communities(), toy.R)
	rc.printf("Modularity (non-overlapping): %d communities\n", part.Count)
	printCommunities(rc, part.Communities(), toy.Users())
	rc.printf("  in-community candidate recommendations: %d, withheld pairs recovered: %d/3\n\n",
		len(modRecs), countHits(modRecs))

	// BIGCLAM: overlapping, but unregularized and bipartite-blind.
	bc, err := ocular.FitBigClam(g, ocular.BigClamConfig{K: 3, Seed: rc.seed})
	if err != nil {
		panic(err)
	}
	sets := bc.Communities(ocular.BigClamDelta(g))
	bcRecs := ocular.CommunityRecommendations(sets, toy.R)
	rc.printf("BIGCLAM (overlapping, unregularized): %d communities above threshold\n", len(sets))
	printCommunities(rc, sets, toy.Users())
	rc.printf("  in-community candidate recommendations: %d, withheld pairs recovered: %d/3\n\n",
		len(bcRecs), countHits(bcRecs))

	// OCuLaR reference.
	ocuHits := 0
	for _, h := range toy.Held {
		recs := ocular.Recommend(model, toy.R, h[0], 1)
		if len(recs) > 0 && recs[0] == h[1] {
			ocuHits++
		}
	}
	rc.printf("OCuLaR (overlapping co-clusters, regularized): withheld pairs recovered: %d/3\n", ocuHits)
}

func printCommunities(rc runConfig, sets [][]int, nu int) {
	for n, set := range sets {
		var users, items []int
		for _, v := range set {
			if v < nu {
				users = append(users, v)
			} else {
				items = append(items, v-nu)
			}
		}
		sort.Ints(users)
		sort.Ints(items)
		rc.printf("  community %d: users %v, items %v\n", n+1, users, items)
	}
}

// runFig3 prints the fitted probability matrix and the automatic rationale
// for the worked example (item 4 to user 6).
func runFig3(rc runConfig) {
	rc.header("Figure 3: fitted probabilities and the worked explanation")
	toy, model := toyModel(rc.seed + 3)
	rc.printf("%s\n", ocular.RenderProbabilityMatrix(model, toy.R))
	rc.printf("Factors of the worked example (Section IV-C):\n")
	rc.printf("  f_item4 = %s\n", fmtVec(model.ItemFactor(4)))
	rc.printf("  f_user6 = %s\n\n", fmtVec(model.UserFactor(6)))
	ex := ocular.ExplainPair(model, toy.R, 6, 4)
	rc.printf("%s", ex.Render(toy.Dataset))
}

// runFig10 trains on the B2B substitute and renders a deployment-style
// rationale with client and product names, choosing a recommendation backed
// by several co-clusters as in the paper's screenshot.
func runFig10(rc runConfig) {
	rc.header("Figure 10: deployment-style rationale on the B2B substitute")
	d := ocular.SyntheticB2B(rc.seed)
	res, err := ocular.Train(d.R, ocular.Config{K: 25, Lambda: 5, MaxIter: 60, Seed: rc.seed})
	if err != nil {
		panic(err)
	}
	model := res.Model

	// Pick the recommendation with the most contributing co-clusters among
	// each user's top pick, preferring high confidence.
	bestU, bestI, bestReasons, bestP := -1, -1, 0, 0.0
	for u := 0; u < d.Users(); u++ {
		recs := ocular.Recommend(model, d.R, u, 1)
		if len(recs) == 0 {
			continue
		}
		ex := ocular.ExplainPair(model, d.R, u, recs[0])
		if len(ex.Reasons) > bestReasons ||
			(len(ex.Reasons) == bestReasons && ex.Probability > bestP) {
			bestU, bestI, bestReasons, bestP = u, recs[0], len(ex.Reasons), ex.Probability
		}
	}
	ex := ocular.ExplainPair(model, d.R, bestU, bestI)
	rc.printf("%s", ex.Render(d.Dataset))
	rc.printf("\nCo-cluster details behind the rationale:\n")
	clusters := ocular.CoClusters(model, 0.3)
	for _, r := range ex.Reasons {
		cl := clusters[r.ClusterID]
		rc.printf("  co-cluster %d: %d clients, %d products, density %.2f\n",
			r.ClusterID, len(cl.Users), len(cl.Items), cl.Density(d.R))
	}
}

func fmtVec(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.FormatFloat(x, 'f', 2, 64)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
