// Command ocular-trainer is the retraining daemon of the continuous-
// training pipeline: it watches an interaction feed for new positives,
// retrains the OCuLaR model warm from the last one, and rolls the result
// out to a running ocular-serve process.
//
//	ocular-serve   -model model.bin -preset small -feed feed/ -addr :8080
//	ocular-trainer -model model.bin -preset small -feed feed/ -server http://localhost:8080
//
// New positives enter the feed through the server's POST /v1/ingest (or
// any other single writer of the feed directory). Each cycle replays the
// feed, folds it into the base training matrix — growing the catalogue
// when new users or items appear — warm-starts from the model at -model
// (core.Config.WarmStart, factors grown deterministically), trains,
// saves a format-v2 artifact atomically, POSTs /v1/reload and verifies
// through the versioned handshake that the server swapped to a strictly
// newer model, then warms the server's rank cache for the hottest users
// via /v1/batch.
//
// Against a multi-model (-registry) server, add -model-name: each cycle
// reloads that named model via POST /v1/reload {"model": NAME} and
// confirms the swap against the model's own version counter in
// /healthz's models tree. -model must match the path the registry maps
// the name to.
//
// Against a sharded serving tier, replace -server with -shards and
// -router: each cycle runs the versioned reload handshake against every
// shard (all must confirm — a partial quorum aborts before anything
// changes for clients), then flips the router's route table via
// /v1/admin/flip, verifies its epoch advanced, and warms the router's
// cache. See the README's "Sharded serving" section.
//
// Retraining triggers: -min-new fires on feed backlog (count), -interval
// fires on elapsed time with any backlog. -once runs exactly one
// unconditional cycle and exits — the CI smoke mode and the cron-job
// alternative to the daemon. After a -once cycle the saved artifact is
// re-opened through the mmap reader as a self-check.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	ocular "repro"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trainer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ocular-trainer: ")
	var (
		feedDir   = flag.String("feed", "", "interaction feed directory (written by ocular-serve -feed); required")
		modelPath = flag.String("model", "", "model file: warm-start source and save target; required")

		dataPath  = flag.String("data", "", "base ratings file the feed grows on top of (user, item[, rating] per line)")
		sep       = flag.String("sep", ",", "field separator for -data")
		threshold = flag.Float64("threshold", 0, "min rating counted as positive for -data")
		preset    = flag.String("preset", "", "synthetic preset as the base matrix (same names as cmd/ocular)")
		seed      = flag.Uint64("seed", 1, "random seed (preset generation and training)")

		k        = flag.Int("k", 30, "number of co-clusters K")
		lambda   = flag.Float64("lambda", 5, "l2 regularization weight")
		relative = flag.Bool("relative", false, "use the R-OCuLaR relative-preference objective")
		iters    = flag.Int("iters", 150, "max training iterations per cycle")
		workers  = flag.Int("workers", 0, "parallel training workers (0 = all cores)")
		saveF32  = flag.Bool("save-f32", true, "include the float32 scoring section in saved models")

		maxGrowth = flag.Int("max-growth", 0, "cap on catalogue growth per cycle; feed events beyond it are skipped (0 = 1<<20)")
		server    = flag.String("server", "", "ocular-serve base URL to roll models out to (e.g. http://localhost:8080)")
		modelName = flag.String("model-name", "", "named model of a -registry server to reload (the handshake tracks that model's own version counter)")
		shards    = flag.String("shards", "", "comma-separated shard base URLs for the quorum rollout (with -router; mutually exclusive with -server)")
		router    = flag.String("router", "", "ocular-router base URL whose route table is flipped after all -shards confirm")
		minNew    = flag.Int("min-new", 100, "retrain once this many new positives accumulated")
		interval  = flag.Duration("interval", 15*time.Minute, "retrain after this long with any backlog (0 disables)")
		poll      = flag.Duration("poll", 5*time.Second, "feed poll period")
		warmUsers = flag.Int("warm-cache", 64, "after a rollout, warm the server's rank cache for this many of the hottest users (0 disables)")
		warmM     = flag.Int("warm-cache-m", 10, "list length of cache-warming requests")
		once      = flag.Bool("once", false, "run one unconditional retrain cycle and exit")

		metricsAddr = flag.String("metrics-addr", "", "serve GET /metrics (backlog gauge, per-cycle phase durations; ?format=prometheus) on this address (empty disables)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
	)
	flag.Parse()
	switch {
	case *feedDir == "":
		log.Fatal("pass -feed DIR (the directory ocular-serve -feed appends to)")
	case *modelPath == "":
		log.Fatal("pass -model FILE (warm-start source and save target)")
	}

	cfg := trainer.Config{
		FeedDir:   *feedDir,
		ModelPath: *modelPath,
		Train: core.Config{
			K: *k, Lambda: *lambda, Relative: *relative,
			MaxIter: *iters, Seed: *seed, Workers: *workers,
		},
		Save:            core.SaveOptions{Float32: *saveF32},
		MaxGrowth:       *maxGrowth,
		ServerURL:       *server,
		ModelName:       *modelName,
		ShardURLs:       splitURLs(*shards),
		RouterURL:       strings.TrimRight(*router, "/"),
		MinNewPositives: *minNew,
		MaxInterval:     *interval,
		PollInterval:    *poll,
		WarmCacheUsers:  *warmUsers,
		WarmCacheM:      *warmM,
		Logf:            log.Printf,
	}
	if *dataPath != "" || *preset != "" {
		d, err := cliutil.LoadData(*dataPath, *sep, *threshold, *preset, *seed)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Base = d.R
		log.Printf("base matrix: %v", d)
	}
	if *metricsAddr != "" {
		cfg.Metrics = trainer.NewMetrics()
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", cfg.Metrics)
		srv := &http.Server{Addr: *metricsAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("metrics server: %v", err)
			}
		}()
		log.Printf("metrics on %s", *metricsAddr)
	}
	if *pprofAddr != "" {
		ln, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		log.Printf("pprof on %s", ln.Addr())
	}

	tr, err := trainer.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *once {
		cy, err := tr.RunOnce(ctx)
		if err != nil {
			log.Fatal(err)
		}
		// Self-check: the artifact must open through the serving path.
		mapped, err := ocular.OpenMappedModel(*modelPath)
		if err != nil {
			log.Fatalf("saved model failed the mmap self-check: %v", err)
		}
		log.Printf("trained %dx%d (nnz=%d) in %d iterations (converged=%v, warm=%v); artifact %s verified (float32=%v)",
			cy.Users, cy.Items, cy.NNZ, cy.Iterations, cy.Converged, cy.WarmStarted, *modelPath, mapped.HasFloat32())
		return
	}

	log.Printf("watching %s (retrain at %d new positives or %v backlog age; poll %v)",
		*feedDir, *minNew, *interval, *poll)
	if err := tr.Run(ctx); err != nil {
		log.Fatal(err)
	}
	log.Print("bye")
}

// splitURLs parses a comma-separated URL list, dropping empty entries
// and trailing slashes (so -shards "a/,b," works as expected).
func splitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	return urls
}
