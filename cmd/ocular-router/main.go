// Command ocular-router fronts a sharded serving tier: item-partitioned
// ocular-serve shard processes (started with -shard-lo/-shard-hi) behind
// one scatter-gather endpoint speaking the single-process API.
//
//	ocular-serve -model model.bin -shard-lo 0    -shard-hi 5000 -addr :8081 &
//	ocular-serve -model model.bin -shard-lo 5000 -shard-hi -1   -addr :8082 &
//	ocular-router -shards http://localhost:8081,http://localhost:8082 -addr :8080
//
// Endpoints (JSON request/response):
//
//	POST /v1/recommend   {"user": 3, "m": 10}  top-M, bit-identical to one full server
//	POST /v1/batch       {"users": [1,2,3]}    many users, worker-pool fan-out
//	POST /v1/admin/flip                         re-read shard versions/ranges (trainer rollout)
//	GET  /healthz                               route table: epoch, shard versions, ranges, breaker/health states
//	GET  /readyz                                readiness (503 until the first route table, and while draining)
//	GET  /metrics                               scatter, hedge, breaker, prober, admission and cache counters
//
// The router owns the top-M cache and singleflight (shards are
// cacheless); every scatter pins each shard to the model version in the
// current route table, so partials of different model versions can never
// be merged — during a trainer rollout, shards serve pinned requests
// from their previous snapshot until the trainer flips the table.
//
// Shard failures fail requests closed (502) by default; -allow-degraded
// instead merges the surviving shards' partials and marks the response
// "degraded" (degraded lists are never cached). -hedge launches a second
// attempt against a slow shard after the given delay, bounded by
// -retry-budget.
//
// With -stages, the router runs the staged re-rank pipeline exactly once
// per request, after the scatter-gather merge: each shard is asked for
// the over-fetched candidate pool the stages declare, so the staged tier
// stays bit-identical to one staged full server. Shards themselves never
// re-rank. boost stages need -items-meta (and -model to size the table);
// diversify needs -model — point it at the same artifact the shards
// serve.
//
// The tier self-heals: per-shard circuit breakers (-breaker-threshold,
// -breaker-cooldown) stop burning timeouts on a shard that keeps
// failing, a background prober (-probe) marks unreachable or
// version-skewed shards down and returns them to rotation when their
// /readyz recovers, -request-timeout propagates the remaining deadline
// budget to shards (exhaustion is 504, not 502), and -max-inflight
// admission control sheds overload with 429 + Retry-After instead of
// queueing without bound. See the README's "Operating the cluster".
//
// At startup the router retries the initial shard refresh until -startup
// elapses, so shards and router can start in any order; SIGINT/SIGTERM
// flip /readyz to 503, wait -drain-wait, then drain connections and exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rank"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ocular-router: ")
	var (
		shards = flag.String("shards", "", "comma-separated shard base URLs (required)")
		addr   = flag.String("addr", ":8080", "listen address")

		cacheSize   = flag.Int("cache", 4096, "cached merged top-M lists (negative disables)")
		cacheShards = flag.Int("cache-shards", 0, "cache shard count, rounded up to a power of two (0 = 16)")
		workers     = flag.Int("workers", 0, "batch fan-out workers (0 = all cores)")
		maxM        = flag.Int("max-m", 1000, "cap on requested list length m (must not exceed the shards' -max-m)")
		maxBatch    = flag.Int("max-batch", 1024, "cap on users per /v1/batch request")
		maxBody     = flag.Int64("max-body", 0, "cap on request body bytes (0 = 1 MiB)")

		stages    = flag.String("stages", "", "staged re-rank pipeline applied once after the merge, e.g. \"floor=0.1,boost=0.5:promoted\"")
		modelPath = flag.String("model", "", "model file (the artifact the shards serve) — needed by diversify stages and to size -items-meta")
		itemsMeta = flag.String("items-meta", "", "item name/tag table for boost stages (item,name,tag,... lines; needs -model)")

		shardWire     = flag.String("shard-wire", "json", "wire format for shard scatter calls: json (POST /v1/shard/topm) or binary (POST /v2/shard/topm frames; shards serve it unless started with -binary-batch=false)")
		maxFanout     = flag.Int("max-fanout", 0, "concurrent shard calls per request (0 = all shards)")
		timeout       = flag.Duration("timeout", 2*time.Second, "per-attempt shard call deadline")
		hedge         = flag.Duration("hedge", 0, "launch a second attempt against a slow shard after this delay (0 = off)")
		allowDegraded = flag.Bool("allow-degraded", false, "serve from surviving shards when others fail (responses marked \"degraded\") instead of failing closed")
		startup       = flag.Duration("startup", 30*time.Second, "how long to retry the initial shard refresh before giving up")

		reqTimeout  = flag.Duration("request-timeout", 0, "end-to-end deadline per request, propagated to shards; exhaustion is 504 (0 = off)")
		brkThresh   = flag.Int("breaker-threshold", 0, "consecutive shard failures that trip its circuit breaker (0 = 5; negative disables)")
		brkCooldown = flag.Duration("breaker-cooldown", 0, "how long an open breaker fails fast before a half-open trial (0 = 1s)")
		probe       = flag.Duration("probe", 0, "health-probe interval for route repair (0 = 2s; probing starts once the tier is up)")
		noProbe     = flag.Bool("no-probe", false, "disable background health probing")
		retryBudget = flag.Float64("retry-budget", 0, "hedge retries allowed per primary attempt in a 10s window (0 = 0.2; negative = unlimited)")
		maxInFlight = flag.Int("max-inflight", 0, "admission control: concurrent data-plane requests (0 = unbounded)")
		maxQueue    = flag.Int("max-queue", 0, "admission control: waiters beyond -max-inflight before shedding 429 (0 = 2x max-inflight)")
		queueWait   = flag.Duration("queue-wait", 0, "admission control: how long a queued request may wait for a slot (0 = 100ms)")
		drainWait   = flag.Duration("drain-wait", 3*time.Second, "on SIGTERM, how long /readyz reports unready before connections drain")

		traceRing = flag.Int("trace-ring", 0, "recent request traces kept for GET /debug/traces (0 = 256; negative disables tracing)")
		traceSlow = flag.Duration("trace-slow", 0, "log a slow-request line for traced requests at or above this duration (0 disables)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
	)
	flag.Parse()
	if *shards == "" {
		log.Fatal("pass -shards URL1,URL2,... (start shards with: ocular-serve -model model.bin -shard-lo L -shard-hi H)")
	}
	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}

	var rtStages []rank.Stage
	if *stages != "" {
		var err error
		rtStages, err = buildStages(*stages, *modelPath, *itemsMeta)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("staged re-ranking: %d stages applied after the merge", len(rtStages))
	}

	rt, err := cluster.New(cluster.Config{
		Shards:           urls,
		Stages:           rtStages,
		MaxM:             *maxM,
		MaxBatch:         *maxBatch,
		MaxBodyBytes:     *maxBody,
		CacheSize:        *cacheSize,
		CacheShards:      *cacheShards,
		Workers:          *workers,
		ShardWire:        *shardWire,
		MaxFanout:        *maxFanout,
		Timeout:          *timeout,
		HedgeDelay:       *hedge,
		AllowDegraded:    *allowDegraded,
		RequestTimeout:   *reqTimeout,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCooldown,
		ProbeInterval:    *probe,
		RetryBudget:      *retryBudget,
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		QueueWait:        *queueWait,
		TraceRing:        *traceRing,
		TraceSlow:        *traceSlow,
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *pprofAddr != "" {
		ln, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		log.Printf("pprof on %s", ln.Addr())
	}

	// Retry the initial refresh so shards and router may start in any
	// order; serving 503s past -startup would only hide a dead tier.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	deadline := time.Now().Add(*startup)
	for {
		epoch, err := rt.Refresh(ctx)
		if err == nil {
			log.Printf("routing %d shards on %s (epoch %d)", len(urls), *addr, epoch)
			break
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			log.Fatalf("no route table after %v: %v", *startup, err)
		}
		log.Printf("waiting for shards: %v", err)
		select {
		case <-time.After(time.Second):
		case <-ctx.Done():
			log.Fatal("interrupted before the shard tier came up")
		}
	}

	// The prober starts only after the tier is known up: route repair
	// heals an established table, it does not gate startup.
	if !*noProbe {
		rt.StartProber(ctx)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	rt.BeginDrain()
	log.Printf("shutting down (/readyz now 503; draining for %v before closing)", *drainWait)
	time.Sleep(*drainWait)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatal(err)
	}
	fmt.Println("bye")
}

// buildStages parses the -stages spec and constructs the router's
// post-merge pipeline. Stages needing per-item data pull it from the
// same model artifact the shards serve (-model): the tag table for
// boost is sized by its catalogue, and diversify reads its item
// factors — identical float64 bits to a full server's, which is what
// keeps staged routing bit-identical to staged single-process serving.
func buildStages(spec, modelPath, itemsMeta string) ([]rank.Stage, error) {
	specs, err := serve.ParseStageSpecs(spec)
	if err != nil {
		return nil, err
	}
	var model *core.Model
	if modelPath != "" {
		if model, err = core.LoadModelFile(modelPath); err != nil {
			return nil, err
		}
	}
	var tags *rank.TagTable
	if itemsMeta != "" {
		if model == nil {
			return nil, fmt.Errorf("-items-meta needs -model (the tag table is sized by the catalogue)")
		}
		if tags, err = rank.LoadTagTableFile(itemsMeta, model.NumItems()); err != nil {
			return nil, err
		}
	}
	return serve.BuildStages(specs, tags, model)
}
