// Command datagen emits a synthetic one-class dataset as CSV
// ("user,item" per positive example), either a named preset or a custom
// planted overlapping co-cluster configuration. The output round-trips
// through the ocular and gridsearch commands via -data.
//
// Examples:
//
//	datagen -preset b2b > b2b.csv
//	datagen -users 500 -items 200 -clusters 10 -within 0.4 -noise 1000 > custom.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	ocular "repro"

	"repro/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		preset = flag.String("preset", "", "preset: movielens, citeulike, b2b, netflix, genes, small")
		seed   = flag.Uint64("seed", 1, "random seed")
		names  = flag.Bool("names", false, "emit display names instead of indices (presets with names)")
		mm     = flag.Bool("mm", false, "emit MatrixMarket coordinate pattern format instead of CSV")

		users    = flag.Int("users", 0, "custom: number of users")
		items    = flag.Int("items", 0, "custom: number of items")
		clusters = flag.Int("clusters", 8, "custom: number of planted co-clusters")
		minCU    = flag.Int("min-cluster-users", 10, "custom: min users per cluster")
		maxCU    = flag.Int("max-cluster-users", 40, "custom: max users per cluster")
		minCI    = flag.Int("min-cluster-items", 8, "custom: min items per cluster")
		maxCI    = flag.Int("max-cluster-items", 25, "custom: max items per cluster")
		within   = flag.Float64("within", 0.4, "custom: in-cluster positive probability")
		noise    = flag.Int("noise", 0, "custom: background noise positives")
		skew     = flag.Float64("skew", 0.8, "custom: noise item popularity skew (zipf exponent)")
	)
	flag.Parse()

	var d *ocular.Dataset
	switch {
	case *preset != "" && *users > 0:
		log.Fatal("-preset and -users are mutually exclusive")
	case *preset != "":
		loaded, err := cliutil.LoadPreset(*preset, *seed)
		if err != nil {
			log.Fatal(err)
		}
		d = loaded
	case *users > 0 && *items > 0:
		p, err := ocular.GeneratePlanted(ocular.PlantedConfig{
			Name: "custom", Users: *users, Items: *items, Clusters: *clusters,
			MinClusterUsers: *minCU, MaxClusterUsers: *maxCU,
			MinClusterItems: *minCI, MaxClusterItems: *maxCI,
			WithinProb: *within, NoisePositives: *noise, PopularitySkew: *skew,
		}, *seed)
		if err != nil {
			log.Fatal(err)
		}
		d = p.Dataset
	default:
		log.Fatal("pass -preset NAME or -users N -items M (see -h)")
	}

	fmt.Fprintln(os.Stderr, d)
	if *mm {
		if err := ocular.WriteMatrixMarket(os.Stdout, d.R); err != nil {
			log.Fatal(err)
		}
		return
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	d.R.Each(func(u, i int) {
		if *names {
			fmt.Fprintf(w, "%s,%s\n", d.UserName(u), d.ItemName(i))
		} else {
			fmt.Fprintf(w, "%d,%d\n", u, i)
		}
	})
}
