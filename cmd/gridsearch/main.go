// Command gridsearch runs the (K, lambda) cross-validated grid search of
// Section IV-B and prints the recall@M heatmap (the Fig 9 view) and the
// best cell.
//
// Examples:
//
//	gridsearch -preset b2b -ks 10,20,40 -lambdas 0,2,10
//	gridsearch -data ratings.csv -sep , -ks 20,50 -lambdas 1,5 -m 20
package main

import (
	"flag"
	"fmt"
	"log"

	ocular "repro"

	"repro/internal/cliutil"
	"repro/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gridsearch: ")
	var (
		dataPath  = flag.String("data", "", "ratings file (user,item[,rating] per line)")
		sep       = flag.String("sep", ",", "field separator for -data")
		threshold = flag.Float64("threshold", 0, "min rating counted as positive")
		preset    = flag.String("preset", "", "synthetic preset: movielens, citeulike, b2b, netflix, genes, small")
		seed      = flag.Uint64("seed", 1, "random seed")

		ksFlag   = flag.String("ks", "10,20,40,80", "comma-separated K values")
		lamsFlag = flag.String("lambdas", "0,1,5,20", "comma-separated lambda values")
		m        = flag.Int("m", 50, "recall cutoff M")
		iters    = flag.Int("iters", 60, "max training iterations per cell")
		relative = flag.Bool("relative", false, "search the R-OCuLaR objective")
		frac     = flag.Float64("train-frac", 0.75, "train fraction of the split")
		folds    = flag.Int("folds", 0, "use k-fold cross-validation instead of a single split (0 = single split)")
	)
	flag.Parse()

	d, err := cliutil.LoadData(*dataPath, *sep, *threshold, *preset, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d)

	ks, err := cliutil.ParseInts(*ksFlag)
	if err != nil {
		log.Fatalf("-ks: %v", err)
	}
	lams, err := cliutil.ParseFloats(*lamsFlag)
	if err != nil {
		log.Fatalf("-lambdas: %v", err)
	}

	gsOpts := ocular.GridSearchOptions{
		M:       *m,
		Base:    ocular.Config{MaxIter: *iters, Seed: *seed, Relative: *relative},
		Workers: parallel.DefaultWorkers(),
	}
	grid := ocular.GridSearchGrid{Ks: ks, Lambdas: lams}
	var res *ocular.GridSearchResult
	if *folds >= 2 {
		res, err = ocular.GridSearchKFold(d.R, grid, *folds, *seed, gsOpts)
	} else {
		sp := ocular.SplitDataset(d, *frac, *seed)
		res, err = ocular.GridSearch(sp.Train, sp.Test, grid, gsOpts)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecall@%d heatmap (rows lambda, cols K):\n%s\n", *m, res.Heatmap(nil))
	fmt.Printf("best: K=%d lambda=%g -> %v\n", res.Best.K, res.Best.Lambda, res.Best.Metrics)
}
