// Command benchjson turns `go test -bench` text output into the
// machine-readable ledger the repo commits per PR (BENCH_<n>.json), so
// the performance trajectory of the hot paths is recorded in-tree rather
// than lost in CI logs.
//
//	go test -run '^$' -bench . -benchtime 1x ./internal/rank/ | benchjson -o BENCH_8.json
//
// Input is read from stdin: any lines that are not benchmark results
// (pkg headers, PASS, metrics-only lines) are ignored, so piping the
// whole `go test` stream works. Each result line contributes one entry:
//
//	{"benchmarks": {"BenchmarkRankFiltered": {"ns_per_op": 93417.0,
//	  "bytes_per_op": 1184, "allocs_per_op": 9}}}
//
// bytes_per_op/allocs_per_op appear only when the benchmark reported
// allocations (-benchmem or b.ReportAllocs). The goroutine-count suffix
// (-8) is stripped from names so ledgers diff cleanly across machines.
//
// When the -o file already exists, new results are merged into it
// (same-name entries overwritten), so one ledger can accumulate the
// whole smoke set across several `go test` invocations.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"regexp"
	"strconv"
)

// entry is one benchmark's recorded costs. Pointer fields are omitted
// when the benchmark did not report them.
type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// ledger is the on-disk document. A map keyed by benchmark name keeps
// the JSON output sorted and the merge semantics trivial.
type ledger struct {
	Benchmarks map[string]entry `json:"benchmarks"`
}

var (
	// resultLine matches `BenchmarkName-8  	  100	  123.4 ns/op  ...`.
	resultLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)
	bytesField = regexp.MustCompile(`(\d+) B/op`)
	allocField = regexp.MustCompile(`(\d+) allocs/op`)
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "-", "output file to write (and merge into, when it exists); - for stdout")
	flag.Parse()

	led := ledger{Benchmarks: map[string]entry{}}
	if *out != "-" {
		prev, err := os.ReadFile(*out)
		switch {
		case err == nil:
			if err := json.Unmarshal(prev, &led); err != nil {
				log.Fatalf("existing %s is not a benchjson ledger: %v", *out, err)
			}
			if led.Benchmarks == nil {
				led.Benchmarks = map[string]entry{}
			}
		case !errors.Is(err, fs.ErrNotExist):
			log.Fatal(err)
		}
	}

	parsed := 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := resultLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			log.Fatalf("bad ns/op in %q: %v", sc.Text(), err)
		}
		e := entry{NsPerOp: ns}
		if b := bytesField.FindStringSubmatch(m[3]); b != nil {
			v, _ := strconv.ParseInt(b[1], 10, 64)
			e.BytesPerOp = &v
		}
		if a := allocField.FindStringSubmatch(m[3]); a != nil {
			v, _ := strconv.ParseInt(a[1], 10, 64)
			e.AllocsPerOp = &v
		}
		led.Benchmarks[m[1]] = e
		parsed++
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if parsed == 0 {
		log.Fatal("no benchmark result lines on stdin (pipe `go test -bench` output in)")
	}

	data, err := json.MarshalIndent(led, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchjson: %d results parsed, %d total in %s\n", parsed, len(led.Benchmarks), *out)
}
