// Command benchjson turns `go test -bench` text output into the
// machine-readable ledger the repo commits per PR (BENCH_<n>.json), so
// the performance trajectory of the hot paths is recorded in-tree rather
// than lost in CI logs.
//
//	go test -run '^$' -bench . -benchtime 1x ./internal/rank/ | benchjson -o BENCH_8.json
//
// Input is read from stdin: any lines that are not benchmark results
// (pkg headers, PASS, metrics-only lines) are ignored, so piping the
// whole `go test` stream works. Each result line contributes one entry:
//
//	{"benchmarks": {"BenchmarkRankFiltered": {"ns_per_op": 93417.0,
//	  "bytes_per_op": 1184, "allocs_per_op": 9}}}
//
// bytes_per_op/allocs_per_op appear only when the benchmark reported
// allocations (-benchmem or b.ReportAllocs). The goroutine-count suffix
// (-8) is stripped from names so ledgers diff cleanly across machines.
//
// When the -o file already exists, new results are merged into it
// (same-name entries overwritten), so one ledger can accumulate the
// whole smoke set across several `go test` invocations.
//
// Compare mode gates CI on the committed ledger:
//
//	benchjson -compare BENCH_9.json /tmp/bench-smoke.json -tolerance 0.15
//
// Every benchmark present in BOTH ledgers is checked; the run exits
// non-zero when any new ns/op exceeds old*(1+tolerance). Names present
// in only one ledger are reported but never fail the run — the smoke
// set and the committed ledger drift as benchmarks are added.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// entry is one benchmark's recorded costs. Pointer fields are omitted
// when the benchmark did not report them.
type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// ledger is the on-disk document. A map keyed by benchmark name keeps
// the JSON output sorted and the merge semantics trivial.
type ledger struct {
	Benchmarks map[string]entry `json:"benchmarks"`
}

var (
	// resultLine matches `BenchmarkName-8  	  100	  123.4 ns/op  ...`.
	resultLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)
	bytesField = regexp.MustCompile(`(\d+) B/op`)
	allocField = regexp.MustCompile(`(\d+) allocs/op`)
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "-", "output file to write (and merge into, when it exists); - for stdout")
	compare := flag.Bool("compare", false, "compare two ledgers (old.json new.json) instead of parsing stdin; exit non-zero on ns/op regression")
	tol := flag.Float64("tolerance", 0.10, "compare mode: allowed fractional ns/op growth before a benchmark counts as regressed")
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *tol))
	}

	led := ledger{Benchmarks: map[string]entry{}}
	if *out != "-" {
		prev, err := os.ReadFile(*out)
		switch {
		case err == nil:
			if err := json.Unmarshal(prev, &led); err != nil {
				log.Fatalf("existing %s is not a benchjson ledger: %v", *out, err)
			}
			if led.Benchmarks == nil {
				led.Benchmarks = map[string]entry{}
			}
		case !errors.Is(err, fs.ErrNotExist):
			log.Fatal(err)
		}
	}

	parsed := 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := resultLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			log.Fatalf("bad ns/op in %q: %v", sc.Text(), err)
		}
		e := entry{NsPerOp: ns}
		if b := bytesField.FindStringSubmatch(m[3]); b != nil {
			v, _ := strconv.ParseInt(b[1], 10, 64)
			e.BytesPerOp = &v
		}
		if a := allocField.FindStringSubmatch(m[3]); a != nil {
			v, _ := strconv.ParseInt(a[1], 10, 64)
			e.AllocsPerOp = &v
		}
		led.Benchmarks[m[1]] = e
		parsed++
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if parsed == 0 {
		log.Fatal("no benchmark result lines on stdin (pipe `go test -bench` output in)")
	}

	data, err := json.MarshalIndent(led, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchjson: %d results parsed, %d total in %s\n", parsed, len(led.Benchmarks), *out)
}

// runCompare implements -compare. The flag package stops option parsing
// at the first positional, so `-tolerance 0.15` written after the two
// ledger paths lands in args — scan them back out rather than force a
// flags-before-paths calling convention on CI scripts.
func runCompare(args []string, tol float64) int {
	var paths []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-tolerance" || a == "--tolerance":
			if i+1 >= len(args) {
				log.Fatal("-tolerance needs a value")
			}
			i++
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil {
				log.Fatalf("bad -tolerance %q: %v", args[i], err)
			}
			tol = v
		default:
			paths = append(paths, a)
		}
	}
	if len(paths) != 2 {
		log.Fatalf("-compare takes exactly two ledgers (old.json new.json), got %d args", len(paths))
	}
	old, cur := readLedger(paths[0]), readLedger(paths[1])

	names := make([]string, 0, len(old.Benchmarks))
	for name := range old.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	regressed := 0
	for _, name := range names {
		o := old.Benchmarks[name]
		n, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Printf("  %-52s only in %s (skipped)\n", name, paths[0])
			continue
		}
		delta := n.NsPerOp/o.NsPerOp - 1
		mark := "ok  "
		if n.NsPerOp > o.NsPerOp*(1+tol) {
			mark = "FAIL"
			regressed++
		}
		fmt.Printf("  %s %-48s %12.0f -> %12.0f ns/op  (%+.1f%%)\n", mark, name, o.NsPerOp, n.NsPerOp, 100*delta)
	}
	for name := range cur.Benchmarks {
		if _, ok := old.Benchmarks[name]; !ok {
			fmt.Printf("  %-52s only in %s (new, skipped)\n", name, paths[1])
		}
	}
	if regressed > 0 {
		fmt.Printf("benchjson: %d benchmark(s) regressed beyond %.0f%% tolerance\n", regressed, 100*tol)
		return 1
	}
	fmt.Printf("benchjson: no regressions beyond %.0f%% tolerance\n", 100*tol)
	return 0
}

func readLedger(path string) ledger {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var led ledger
	if err := json.Unmarshal(data, &led); err != nil {
		log.Fatalf("%s is not a benchjson ledger: %v", path, err)
	}
	return led
}
