// Command ocular-serve answers recommendation queries over a trained,
// serialized OCuLaR model — the online half of the paper's train-once /
// serve-many production deployment (Section IV-D). Train and save a model
// with cmd/ocular -save, then:
//
//	ocular-serve -model model.bin -preset small -addr :8080
//
// Endpoints (JSON request/response):
//
//	POST /v1/recommend  {"user": 3, "m": 10}      top-M for a known user
//	POST /v1/foldin     {"items": [1,2,3]}        cold-start fold-in + top-M
//	POST /v1/explain    {"user": 3, "item": 7}    co-cluster rationale
//	POST /v1/batch      {"users": [1,2,3]}        many users, worker-pool fan-out
//	POST /v1/reload                                hot-swap the model from -model
//	GET  /healthz                                  liveness + model version
//	GET  /metrics                                  request counts, latencies, cache stats
//
// The training matrix (-data or -preset, same flags as cmd/ocular) supplies
// the per-user exclusion lists: items a user already has are never
// recommended back. Without it every item is a candidate for every user.
//
// A format-v2 model file (what ocular -save writes) is mmapped and served
// in place: reload cost is O(1) in the model size, and when the file
// carries a float32 factor section (ocular -save-f32, the default) the
// hot scoring loop runs at half the memory traffic. Legacy v1 files are
// loaded through the copying reader.
//
// SIGHUP (or POST /v1/reload) re-reads -model and atomically swaps it in
// without dropping in-flight requests; SIGINT/SIGTERM drain connections and
// exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	ocular "repro"

	"repro/internal/cliutil"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ocular-serve: ")
	var (
		modelPath = flag.String("model", "", "serialized model file (from ocular -save); required")
		addr      = flag.String("addr", ":8080", "listen address")

		dataPath  = flag.String("data", "", "training ratings file for per-user exclusions")
		sep       = flag.String("sep", ",", "field separator for -data")
		threshold = flag.Float64("threshold", 0, "min rating counted as positive for -data")
		preset    = flag.String("preset", "", "synthetic preset used at training time (exclusions)")
		seed      = flag.Uint64("seed", 1, "preset generation seed (must match training)")

		cacheSize = flag.Int("cache", 4096, "cached top-M lists (negative disables)")
		workers   = flag.Int("workers", 0, "batch fan-out workers (0 = all cores)")
		maxM      = flag.Int("max-m", 1000, "cap on requested list length m")
		maxBatch  = flag.Int("max-batch", 1024, "cap on users per /v1/batch request")
		lambda    = flag.Float64("lambda", 5, "fold-in l2 regularization weight")
		relative  = flag.Bool("relative", false, "fold-in uses the R-OCuLaR objective")
	)
	flag.Parse()
	if *modelPath == "" {
		log.Fatal("pass -model FILE (train one with: ocular -preset small -save model.bin)")
	}

	cfg := serve.Config{
		ModelPath: *modelPath,
		FoldIn:    ocular.Config{Lambda: *lambda, Relative: *relative},
		CacheSize: *cacheSize,
		Workers:   *workers,
		MaxM:      *maxM,
		MaxBatch:  *maxBatch,
	}
	if *dataPath != "" || *preset != "" {
		d, err := cliutil.LoadData(*dataPath, *sep, *threshold, *preset, *seed)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Train = d.R
		log.Printf("exclusion matrix: %v", d)
	}

	srv, err := serve.NewFromFile(cfg)
	if err != nil {
		log.Fatal(err)
	}
	mode := "copy (legacy v1 file; re-save with ocular -save for O(1) reloads)"
	if mapped, f32 := srv.ServingMode(); mapped && f32 {
		mode = "mmap, float32 scoring"
	} else if mapped {
		mode = "mmap, float64 scoring"
	}
	log.Printf("serving %v on %s (%s)", srv.Model(), *addr, mode)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGHUP hot-swaps the model; SIGINT/SIGTERM drain and exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.ReloadFromFile(); err != nil {
				log.Printf("reload failed (still serving version %d): %v", srv.Version(), err)
				continue
			}
			log.Printf("reloaded %v (version %d)", srv.Model(), srv.Version())
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down (draining in-flight requests)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatal(err)
	}
	fmt.Println("bye")
}
