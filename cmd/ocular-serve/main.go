// Command ocular-serve answers recommendation queries over a trained,
// serialized OCuLaR model — the online half of the paper's train-once /
// serve-many production deployment (Section IV-D). Train and save a model
// with cmd/ocular -save, then:
//
//	ocular-serve -model model.bin -preset small -addr :8080
//
// Endpoints (JSON request/response):
//
//	POST /v1/recommend  {"user": 3, "m": 10}      top-M for a known user
//	POST /v1/foldin     {"items": [1,2,3]}        cold-start fold-in + top-M
//	POST /v1/explain    {"user": 3, "item": 7}    co-cluster rationale
//	POST /v1/batch      {"users": [1,2,3]}        many users, worker-pool fan-out
//	POST /v1/ingest     {"user": 3, "items": [7]} append new positives to -feed
//	POST /v1/reload                                hot-swap the model from -model
//	GET  /healthz                                  liveness + model version
//	GET  /readyz                                   readiness (503 while loading or draining)
//	GET  /metrics                                  request counts, latencies, cache stats
//
// With -feed, /v1/ingest appends new positives to the interaction feed
// that ocular-trainer watches: the trainer retrains warm from the served
// model, rewrites -model, POSTs /v1/reload back and warms the cache —
// the full continuous-training loop with no manual step.
//
// recommend, batch and foldin additionally accept "exclude_items" (a
// per-request do-not-recommend list) and, when -items-meta supplies an
// item name/tag table, "filter": {"allow_tags": [...], "deny_tags": [...]}.
// Filtered requests are cached like unfiltered ones — the cache key
// fingerprints the filter set — and duplicate concurrent misses are
// coalesced into one ranking computation.
//
// The training matrix (-data or -preset, same flags as cmd/ocular) supplies
// the per-user exclusion lists: items a user already has are never
// recommended back. Without it every item is a candidate for every user.
//
// A format-v2 model file (what ocular -save writes) is mmapped and served
// in place: reload cost is O(1) in the model size, and when the file
// carries a float32 factor section (ocular -save-f32, the default) the
// hot scoring loop runs at half the memory traffic. Legacy v1 files are
// loaded through the copying reader.
//
// SIGHUP (or POST /v1/reload) re-reads -model and atomically swaps it in
// without dropping in-flight requests; SIGINT/SIGTERM drain connections and
// exit.
//
// With -stages, every served list runs through the staged re-rank
// pipeline (score floor, tag boost, MMR diversification) after selection
// — see the README's "Staged re-ranking" section for the spec syntax.
// With -registry FILE, the process hosts the multi-model platform: named
// models, per-tenant A/B experiments with deterministic user→arm
// splits, shadow scoring against candidate models (-shadow-log), and
// per-tenant ingest feed partitions. Requests without a "tenant" field
// keep serving the default -model exactly as before.
//
// With -shard-lo/-shard-hi the process becomes one shard of the sharded
// serving tier: it mmaps only its item range of the model and serves
// POST /v1/shard/topm partials (plus /v1/reload, /healthz, /metrics) for
// cmd/ocular-router to scatter-gather. -shard-hi -1 means "through the
// end of the catalogue". See the README's "Sharded serving" section.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	ocular "repro"

	"repro/internal/cliutil"
	"repro/internal/feed"
	"repro/internal/obs"
	"repro/internal/rank"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ocular-serve: ")
	var (
		modelPath = flag.String("model", "", "serialized model file (from ocular -save); required")
		addr      = flag.String("addr", ":8080", "listen address")

		dataPath  = flag.String("data", "", "training ratings file for per-user exclusions")
		sep       = flag.String("sep", ",", "field separator for -data")
		threshold = flag.Float64("threshold", 0, "min rating counted as positive for -data")
		preset    = flag.String("preset", "", "synthetic preset used at training time (exclusions)")
		seed      = flag.Uint64("seed", 1, "preset generation seed (must match training)")

		itemsMeta = flag.String("items-meta", "", "item name/tag table (item,name,tag,... lines) enabling \"filter\" requests")
		feedDir   = flag.String("feed", "", "interaction feed directory enabling POST /v1/ingest (ocular-trainer retrains from it)")
		maxGrowth = flag.Int("max-ingest-growth", 0, "cap on how far beyond the served catalogue ingested ids may reach (0 = 1<<20)")

		stages    = flag.String("stages", "", "staged re-rank pipeline for the default path, e.g. \"floor=0.1,boost=0.5:promoted,diversify=0.7:4\"")
		registry  = flag.String("registry", "", "multi-model registry config (JSON: named models, tenants, experiments, shadows)")
		shadowLog = flag.String("shadow-log", "", "append shadow-comparison diff records (JSON lines) to this file")

		cacheSize   = flag.Int("cache", 4096, "cached top-M lists (negative disables)")
		cacheShards = flag.Int("cache-shards", 0, "top-M cache shard count, rounded up to a power of two (0 = 16)")
		workers     = flag.Int("workers", 0, "batch fan-out workers (0 = all cores)")
		maxM        = flag.Int("max-m", 1000, "cap on requested list length m")
		maxBatch    = flag.Int("max-batch", 1024, "cap on users per /v1/batch request")
		maxBody     = flag.Int64("max-body", 0, "cap on request body bytes (0 = 1 MiB)")
		lambda      = flag.Float64("lambda", 5, "fold-in l2 regularization weight")
		relative    = flag.Bool("relative", false, "fold-in uses the R-OCuLaR objective")

		shardLo = flag.Int("shard-lo", 0, "shard mode: first item (inclusive) of the served partition")
		shardHi = flag.Int("shard-hi", 0, "shard mode: item upper bound (exclusive; -1 = end of catalogue; 0 = full-catalogue mode)")

		binaryBatch = flag.Bool("binary-batch", true, "serve the binary columnar batch endpoint POST /v2/batch (POST /v2/shard/topm in shard mode)")

		maxInFlight = flag.Int("max-inflight", 0, "admission control: concurrent data-plane requests (0 = unbounded)")
		maxQueue    = flag.Int("max-queue", 0, "admission control: waiters beyond -max-inflight before shedding 429 (0 = 2x max-inflight)")
		queueWait   = flag.Duration("queue-wait", 0, "admission control: how long a queued request may wait for a slot (0 = 100ms)")
		drainWait   = flag.Duration("drain-wait", 3*time.Second, "on SIGTERM, how long /readyz reports unready before connections drain (lets balancers stop sending)")

		traceRing = flag.Int("trace-ring", 0, "recent request traces kept for GET /debug/traces (0 = 256; negative disables tracing)")
		traceSlow = flag.Duration("trace-slow", 0, "log a slow-request line for traced requests at or above this duration (0 disables)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
	)
	flag.Parse()
	if *modelPath == "" {
		log.Fatal("pass -model FILE (train one with: ocular -preset small -save model.bin)")
	}
	shardMode := *shardHi != 0
	if shardMode && *feedDir != "" {
		log.Fatal("-feed is incompatible with shard mode (run ingest on a full server; shards are stateless)")
	}
	if shardMode && (*stages != "" || *registry != "") {
		log.Fatal("-stages and -registry are incompatible with shard mode (shards serve raw partials; stages run on the router, the registry on full servers)")
	}

	cfg := serve.Config{
		ModelPath:       *modelPath,
		FoldIn:          ocular.Config{Lambda: *lambda, Relative: *relative},
		CacheSize:       *cacheSize,
		CacheShards:     *cacheShards,
		Workers:         *workers,
		MaxM:            *maxM,
		MaxBatch:        *maxBatch,
		MaxBodyBytes:    *maxBody,
		MaxIngestGrowth: *maxGrowth,
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		QueueWait:       *queueWait,
		// The flag reads positively ("serve the binary endpoint?"), the
		// config negatively (zero value = enabled).
		DisableBinaryBatch: !*binaryBatch,
		TraceRing:          *traceRing,
		TraceSlow:          *traceSlow,
	}
	if *pprofAddr != "" {
		ln, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		log.Printf("pprof on %s", ln.Addr())
	}
	if *dataPath != "" || *preset != "" {
		d, err := cliutil.LoadData(*dataPath, *sep, *threshold, *preset, *seed)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Train = d.R
		log.Printf("exclusion matrix: %v", d)
	}
	var fl *feed.Log
	if *feedDir != "" {
		var err error
		fl, err = feed.Open(*feedDir, feed.Options{})
		if err != nil {
			log.Fatal(err)
		}
		cfg.Feed = fl
		log.Printf("interaction feed: %s (%d positives, %d segments)", *feedDir, fl.Count(), fl.Segments())
	}
	if *itemsMeta != "" {
		// The table's item range is bounded by the served model's
		// catalogue; peek at the model header to size it (O(1) for a v2
		// file — only the header is validated).
		numItems, err := modelNumItems(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		tags, err := rank.LoadTagTableFile(*itemsMeta, numItems)
		if err != nil {
			log.Fatal(err)
		}
		cfg.ItemTags = tags
		log.Printf("item metadata: %d tags over %d items", tags.NumTags(), tags.NumItems())
	}
	if *stages != "" {
		specs, err := serve.ParseStageSpecs(*stages)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Stages = specs
		log.Printf("staged re-ranking: %d stages on the default path", len(specs))
	}
	if *registry != "" {
		reg, err := serve.LoadRegistryFile(*registry)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Registry = reg
		log.Printf("multi-model registry: %d models, %d tenants (%s)", len(reg.Models), len(reg.Tenants), *registry)
	}
	var shadowW *os.File
	if *shadowLog != "" {
		if *registry == "" {
			log.Fatal("-shadow-log needs -registry (shadow comparisons are configured per tenant)")
		}
		var err error
		shadowW, err = os.OpenFile(*shadowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		cfg.ShadowLog = shadowW
		log.Printf("shadow diff log: %s", *shadowLog)
	}

	var srv *serve.Server
	var err error
	if shardMode {
		cfg.ShardLo, cfg.ShardHi = *shardLo, *shardHi
		srv, err = serve.NewShardFromFile(cfg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving item shard [%d,%d) on %s (mmap; merge through ocular-router)", *shardLo, *shardHi, *addr)
	} else {
		srv, err = serve.NewFromFile(cfg)
		if err != nil {
			log.Fatal(err)
		}
		mode := "copy (legacy v1 file; re-save with ocular -save for O(1) reloads)"
		if mapped, f32 := srv.ServingMode(); mapped && f32 {
			mode = "mmap, float32 scoring"
		} else if mapped {
			mode = "mmap, float64 scoring"
		}
		log.Printf("serving %v on %s (%s)", srv.Model(), *addr, mode)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGHUP hot-swaps the model; SIGINT/SIGTERM drain and exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.ReloadFromFile(); err != nil {
				log.Printf("reload failed (still serving version %d): %v", srv.Version(), err)
				continue
			}
			if shardMode {
				log.Printf("reloaded shard (version %d)", srv.Version())
				continue
			}
			mapped, f32 := srv.ServingMode()
			log.Printf("reloaded %v (version %d, mapped=%v float32=%v)", srv.Model(), srv.Version(), mapped, f32)
		}
	}()

	err = runServer(httpSrv, srv, *drainWait)
	// The feed writer buffers appends; a drained shutdown must not lose
	// the tail of the interaction log, so sync and close it explicitly
	// before deciding the exit status (log.Fatal would skip deferred
	// closes).
	if fl != nil {
		if serr := fl.Sync(); serr != nil {
			log.Printf("feed sync on shutdown: %v", serr)
		}
		if cerr := fl.Close(); cerr != nil {
			log.Printf("feed close on shutdown: %v", cerr)
		}
	}
	// The registry's per-tenant feed partitions buffer like -feed does;
	// sync and close them too, and let in-flight shadow comparisons finish
	// before their log file closes under them.
	srv.ShadowFlush()
	if cerr := srv.Close(); cerr != nil {
		log.Printf("registry close on shutdown: %v", cerr)
	}
	if shadowW != nil {
		if cerr := shadowW.Close(); cerr != nil {
			log.Printf("shadow log close on shutdown: %v", cerr)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bye")
}

// modelNumItems reads the catalogue size out of a model file, preferring
// the O(1) mmap header over the copying v1 reader. For a v2 file (the
// default save format) this costs one header validation; the short-lived
// mapping is released by GC. Only a legacy v1 file pays a second full
// read before serve.NewFromFile loads it for real.
func modelNumItems(path string) (int, error) {
	if mapped, err := ocular.OpenMappedModel(path); err == nil {
		n := mapped.NumItems()
		return n, nil
	}
	model, err := ocular.LoadModelFile(path)
	if err != nil {
		return 0, err
	}
	return model.NumItems(), nil
}

// runServer serves until SIGINT/SIGTERM, then drains: readiness flips
// to 503 first so load balancers stop routing here, the data path keeps
// serving stragglers for drainWait, and only then are connections shut
// down. It returns instead of exiting so the caller can flush state
// (the feed writer) whatever the outcome.
func runServer(httpSrv *http.Server, srv *serve.Server, drainWait time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	srv.BeginDrain()
	log.Printf("shutting down (/readyz now 503; draining for %v before closing)", drainWait)
	time.Sleep(drainWait)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
