package ocular_test

import (
	"bytes"
	"math"
	"testing"

	ocular "repro"
)

// TestFacadeModelPersistence: a deployment-shaped flow — train, save,
// reload, serve identical recommendations.
func TestFacadeModelPersistence(t *testing.T) {
	d := ocular.SyntheticSmall(40)
	res, err := ocular.Train(d.R, ocular.Config{K: 6, Lambda: 2, MaxIter: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := res.Model.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ocular.ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.Users(); u += 13 {
		a := ocular.Recommend(res.Model, d.R, u, 5)
		b := ocular.Recommend(loaded, d.R, u, 5)
		for n := range a {
			if a[n] != b[n] {
				t.Fatalf("user %d: recommendations differ after reload", u)
			}
		}
	}
}

// TestFacadeFoldIn: onboard an unseen client from its purchase history and
// get plausible scores without retraining.
func TestFacadeFoldIn(t *testing.T) {
	d := ocular.SyntheticSmall(41)
	sp := ocular.SplitDataset(d.Dataset, 0.75, 41)
	res, err := ocular.Train(sp.Train, ocular.Config{K: 8, Lambda: 2, MaxIter: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Treat user 0's train positives as a "new" client's history.
	row := sp.Train.Row(0)
	items := make([]int, len(row))
	for n, i := range row {
		items[n] = int(i)
	}
	f, bias, err := res.Model.FoldInUser(items, ocular.Config{Lambda: 2, MaxIter: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, d.Items())
	res.Model.ScoreWithFactor(f, bias, scores)
	var posMean, posN, unkMean, unkN float64
	for i, s := range scores {
		if math.IsNaN(s) || s < 0 || s >= 1 {
			t.Fatalf("fold-in score %v invalid", s)
		}
		if sp.Train.Has(0, i) {
			posMean += s
			posN++
		} else {
			unkMean += s
			unkN++
		}
	}
	if posMean/posN <= unkMean/unkN {
		t.Fatalf("fold-in scores do not separate history (%v) from unknowns (%v)",
			posMean/posN, unkMean/unkN)
	}
}

// TestFacadeMatrixMarketRoundTrip: dataset interchange through the facade.
func TestFacadeMatrixMarketRoundTrip(t *testing.T) {
	d := ocular.SyntheticSmall(42)
	var buf bytes.Buffer
	if err := ocular.WriteMatrixMarket(&buf, d.R); err != nil {
		t.Fatal(err)
	}
	m, err := ocular.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(d.R) {
		t.Fatal("MatrixMarket round trip lost data")
	}
}

// TestFacadeSubsampleForScalability mirrors the Fig 7 mechanism.
func TestFacadeSubsampleForScalability(t *testing.T) {
	d := ocular.SyntheticSmall(43)
	half := ocular.Subsample(d.R, 0.5, 7)
	if got, want := half.NNZ(), int(float64(d.R.NNZ())*0.5+0.5); got != want {
		t.Fatalf("subsample nnz = %d, want %d", got, want)
	}
}

// TestFacadeBiasAndGradStepsOptions exercises the Section IV-A extension
// and the GradSteps ablation knob through the public Config.
func TestFacadeBiasAndGradStepsOptions(t *testing.T) {
	d := ocular.SyntheticSmall(44)
	res, err := ocular.Train(d.R, ocular.Config{K: 4, Lambda: 2, MaxIter: 15, Seed: 1, Bias: true, GradSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Model.HasBias() {
		t.Fatal("bias model lost flag through facade")
	}
	for n := 1; n < len(res.Objective); n++ {
		if res.Objective[n] > res.Objective[n-1]+1e-9*math.Abs(res.Objective[n-1]) {
			t.Fatal("objective increased")
		}
	}
}

// TestFacadeGeneExpressionPreset sanity-checks the future-work dataset.
func TestFacadeGeneExpressionPreset(t *testing.T) {
	d := ocular.SyntheticGeneExpression(1)
	if d.Users() != 900 || d.Items() != 80 {
		t.Fatalf("gene preset shape %dx%d", d.Users(), d.Items())
	}
	if len(d.Clusters) != 8 {
		t.Fatalf("gene preset modules = %d", len(d.Clusters))
	}
	if d.UserName(0) != "GENE0001" || d.ItemName(0) != "cond-01" {
		t.Fatalf("gene names wrong: %q %q", d.UserName(0), d.ItemName(0))
	}
}
